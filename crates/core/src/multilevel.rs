//! Multilevel coarsen–partition–refine: PSO at the coarsest level only.
//!
//! Flat PSO cost grows with neurons × crossbars, which prices it out of
//! SNNs an order of magnitude beyond the paper's benchmarks. The standard
//! multigrid trick from graph partitioning fixes that: *coarsen* the spike
//! graph by collapsing heavily-communicating neuron pairs until the
//! instance is small, run the full swarm only there, then *project* the
//! coarse solution back up level by level, repairing the approximation
//! error at each step with a cheap boundary-local refinement pass built on
//! [`EvalEngine`]'s O(deg) move deltas.
//!
//! # Coarsening invariant: coarse feasibility ⇒ fine feasibility
//!
//! Matching is pairwise, so a node at coarse level `l` aggregates at most
//! `2^l` fine neurons. Each level halves the per-crossbar capacity:
//! `cap_l = floor(cap / 2^l)` (halving iterated once per level). A
//! feasible level-`l` assignment puts at most `cap_l` coarse nodes on a
//! crossbar, hence at most `2^l · floor(cap / 2^l) ≤ cap` fine neurons —
//! so *projecting any feasible coarse assignment yields a feasible fine
//! assignment*, with no repair step. Coarsening stops before the halved
//! capacity could make the coarse instance itself infeasible
//! (`num_coarse > num_crossbars · cap_{l+1}`), so every level in the
//! stack is solvable by construction.
//!
//! The number of crossbars never changes across levels, which means one
//! [`DistanceLut`] serves every level and all three [`FitnessKind`]s work
//! unmodified on coarse problems. Coarse spike counts are the sum of the
//! members' counts, so coarse cut costs *overprice* fine cuts roughly
//! uniformly — good enough to rank coarse solutions, which is all the
//! V-cycle needs (the final answer is always priced on the true fine
//! problem, see below).
//!
//! # Determinism
//!
//! Results are byte-identical for every thread count, matching the repo's
//! contract for [`PsoPartitioner`]:
//!
//! - The heavy-edge-matching coarsener is sequential and visits neurons in
//!   increasing id; ties on edge weight break toward the lowest neighbor
//!   id. Coarse ids are assigned in visit order, which equals
//!   smallest-member order.
//! - PSO at the coarsest level inherits `run_rounds`' own determinism
//!   (per-particle RNG streams, worker-order reduction).
//! - Refinement proposes moves in parallel against a *frozen* cost state
//!   (contiguous shards, reduced in worker-index order), then applies them
//!   sequentially in `(delta, neuron id)` order with re-pricing — the
//!   accepted set never depends on sharding.
//!
//! # Never-worse guard
//!
//! Intermediate levels refine an *approximate* (overpriced) objective, so
//! per-level improvements do not guarantee fine-cost monotonicity. The
//! driver therefore also computes the pure (unrefined) projection of the
//! coarsest solution, prices both candidates on the true fine problem, and
//! returns the better — making "V-cycle cut ≤ projected coarsest cut" hold
//! by construction.
//!
//! [`PsoPartitioner`]: crate::pso::PsoPartitioner
//! [`DistanceLut`]: neuromap_noc::distance::DistanceLut

use crate::error::CoreError;
use crate::eval::EvalEngine;
use crate::graph::SpikeGraph;
use crate::partition::{FitnessKind, PartitionProblem, Partitioner};
use crate::pool;
use crate::pso::{self, PsoConfig, SwarmState};
use neuromap_hw::mapping::Mapping;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration for the multilevel V-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultilevelConfig {
    /// Swarm configuration used at the coarsest level only. `fitness`
    /// selects the objective for every level's refinement as well.
    pub pso: PsoConfig,
    /// Stop coarsening once a level has at most this many nodes.
    pub min_coarse_neurons: u32,
    /// Hard cap on the number of coarse levels.
    pub max_levels: u32,
    /// Require each level to shrink below `min_shrink ×` the finer level's
    /// node count, otherwise stop (guards against matching stalls on
    /// star-like graphs).
    pub min_shrink: f64,
    /// Boundary-refinement rounds per level (0 disables refinement).
    pub refine_rounds: u32,
    /// Worker threads for the refinement propose phase. Purely an
    /// execution knob: results are byte-identical for every value.
    pub threads: usize,
    /// Chips in the target fabric (1 = single chip, the classic
    /// V-cycle). With more than one chip the coarsest level runs PSO
    /// over *chips* instead of crossbars — assigning clusters to chips
    /// so inter-chip traffic is minimized first — then expands each
    /// chip's nodes deterministically into that chip's crossbar range
    /// before the usual boundary refinement and projection descent.
    /// Must divide the problem's crossbar count; crossbars `q·(C/chips)
    /// .. (q+1)·(C/chips)` belong to chip `q`, matching
    /// `noc::topology::HierTopology`'s chip-major crossbar layout.
    #[serde(default = "default_chips")]
    pub chips: usize,
}

/// Serde default for [`MultilevelConfig::chips`]: configs recorded
/// before the multi-chip outer level existed mean a single chip.
fn default_chips() -> usize {
    1
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            pso: PsoConfig::default(),
            min_coarse_neurons: 256,
            max_levels: 8,
            min_shrink: 0.95,
            refine_rounds: 8,
            threads: pso::default_threads(),
            chips: 1,
        }
    }
}

impl MultilevelConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when a field is out of domain.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.pso.validate()?;
        if self.min_coarse_neurons == 0 {
            return Err(CoreError::InvalidParameter {
                name: "min_coarse_neurons",
                value: self.min_coarse_neurons.to_string(),
            });
        }
        if !(self.min_shrink > 0.0 && self.min_shrink <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "min_shrink",
                value: self.min_shrink.to_string(),
            });
        }
        if self.threads == 0 {
            return Err(CoreError::InvalidParameter {
                name: "threads",
                value: self.threads.to_string(),
            });
        }
        if self.chips == 0 {
            return Err(CoreError::InvalidParameter {
                name: "chips",
                value: self.chips.to_string(),
            });
        }
        Ok(())
    }
}

/// One coarse level: the collapsed graph plus the map back to the finer
/// level it was built from.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    graph: SpikeGraph,
    capacity: u32,
    /// `parent[fine] = coarse`: the finer level's node → this level's node.
    parent: Vec<u32>,
    /// Fraction of the finer level's nodes matched into pairs.
    matching_rate: f64,
}

impl CoarseLevel {
    /// The collapsed spike graph at this level.
    pub fn graph(&self) -> &SpikeGraph {
        &self.graph
    }

    /// Per-crossbar capacity at this level (`floor(cap / 2^l)`).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// `parent[fine_node] = coarse_node` into this level, indexed by the
    /// finer level's node ids.
    pub fn parent(&self) -> &[u32] {
        &self.parent
    }

    /// Fraction of the finer level's nodes that were matched into pairs.
    pub fn matching_rate(&self) -> f64 {
        self.matching_rate
    }
}

/// The stack of coarse levels built over a [`PartitionProblem`],
/// finest-coarse first: `level(0)` was coarsened directly from the
/// original graph, `level(num_levels() - 1)` is the coarsest.
#[derive(Debug, Clone)]
pub struct LevelStack {
    levels: Vec<CoarseLevel>,
}

impl LevelStack {
    /// Number of coarse levels (0 when the instance was already small or
    /// coarsening could not shrink it).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Coarse level `k` (0 = first coarsening of the original graph).
    ///
    /// # Panics
    ///
    /// Panics when `k >= num_levels()`.
    pub fn level(&self, k: usize) -> &CoarseLevel {
        &self.levels[k]
    }

    /// The coarse [`PartitionProblem`] at level `k`, inheriting
    /// `base`'s crossbar count and (when present) hop table.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionProblem::new`] validation errors; by
    /// construction of the stack these do not occur.
    ///
    /// # Panics
    ///
    /// Panics when `k >= num_levels()`.
    pub fn problem_at<'s>(
        &'s self,
        k: usize,
        base: &PartitionProblem<'s>,
    ) -> Result<PartitionProblem<'s>, CoreError> {
        let level = &self.levels[k];
        let mut p = PartitionProblem::new(&level.graph, base.num_crossbars(), level.capacity)?;
        if let Some(h) = base.hops() {
            p = p.with_hops(h)?;
        }
        Ok(p)
    }

    /// Projects an assignment of coarse level `k` one step down: the
    /// result assigns the finer level's nodes (the original graph when
    /// `k == 0`) to the crossbar of their coarse parent.
    ///
    /// # Panics
    ///
    /// Panics when `k >= num_levels()` or `assignment` is shorter than
    /// level `k`'s node count.
    pub fn project(&self, k: usize, assignment: &[u32]) -> Vec<u32> {
        self.levels[k]
            .parent
            .iter()
            .map(|&p| assignment[p as usize])
            .collect()
    }
}

/// Builds the coarse-level stack for `problem` under `cfg`'s coarsening
/// controls. Coarsening stops at the first of: `max_levels` reached, node
/// count at or below `min_coarse_neurons`, capacity no longer halvable,
/// halved capacity would make the coarse instance infeasible, or the
/// matching shrank the graph by less than `min_shrink`.
pub fn build_levels(problem: &PartitionProblem<'_>, cfg: &MultilevelConfig) -> LevelStack {
    let c = problem.num_crossbars();
    let mut levels: Vec<CoarseLevel> = Vec::new();
    while (levels.len() as u32) < cfg.max_levels {
        let next = {
            let (graph, capacity) = match levels.last() {
                None => (problem.graph(), problem.capacity()),
                Some(l) => (&l.graph, l.capacity),
            };
            if graph.num_neurons() <= cfg.min_coarse_neurons {
                None
            } else {
                coarsen_once(graph, c, capacity, cfg.min_shrink)
            }
        };
        match next {
            Some(level) => levels.push(level),
            None => break,
        }
    }
    LevelStack { levels }
}

/// One heavy-edge-matching pass. Returns `None` when the capacity cannot
/// halve, the matching fails the shrink threshold, or the coarse instance
/// would be infeasible under the halved capacity.
fn coarsen_once(
    graph: &SpikeGraph,
    num_crossbars: usize,
    capacity: u32,
    min_shrink: f64,
) -> Option<CoarseLevel> {
    let next_cap = capacity / 2;
    if next_cap == 0 {
        return None;
    }
    let n = graph.num_neurons() as usize;

    // Heavy-edge matching: visit neurons in increasing id; match each
    // unmatched neuron with its heaviest unmatched neighbor (undirected
    // weight = spike traffic across the pair, plus 1 per synapse so
    // silent edges still attract), ties toward the lowest id. Every
    // unmatched neighbor seen at u's visit has id > u (a smaller one
    // would have matched at its own visit while u was still free), so
    // visit order doubles as smallest-member order for coarse ids.
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut weight = vec![0u64; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut pairs: u32 = 0;
    for u in 0..n as u32 {
        if mate[u as usize] != UNMATCHED {
            continue;
        }
        touched.clear();
        for &v in graph.targets(u) {
            if v == u || mate[v as usize] != UNMATCHED {
                continue;
            }
            if weight[v as usize] == 0 {
                touched.push(v);
            }
            weight[v as usize] += u64::from(graph.count(u)) + 1;
        }
        for &v in graph.sources(u) {
            if v == u || mate[v as usize] != UNMATCHED {
                continue;
            }
            if weight[v as usize] == 0 {
                touched.push(v);
            }
            weight[v as usize] += u64::from(graph.count(v)) + 1;
        }
        let mut best: Option<(u64, u32)> = None;
        for &v in &touched {
            let w = weight[v as usize];
            weight[v as usize] = 0;
            let better = match best {
                None => true,
                Some((bw, bv)) => w > bw || (w == bw && v < bv),
            };
            if better {
                best = Some((w, v));
            }
        }
        if let Some((_, v)) = best {
            mate[u as usize] = v;
            mate[v as usize] = u;
            pairs += 1;
        }
    }

    // Coarse ids in increasing smallest-member order.
    let mut parent = vec![UNMATCHED; n];
    let mut num_coarse: u32 = 0;
    for u in 0..n {
        if parent[u] != UNMATCHED {
            continue;
        }
        parent[u] = num_coarse;
        let v = mate[u];
        if v != UNMATCHED {
            parent[v as usize] = num_coarse;
        }
        num_coarse += 1;
    }

    if f64::from(num_coarse) > min_shrink * n as f64 {
        return None;
    }
    if u64::from(num_coarse) > num_crossbars as u64 * u64::from(next_cap) {
        return None;
    }

    // Collapse: coarse count = sum of member counts; internal edges drop,
    // parallel cross edges are kept (CSR multiplicities carry weight).
    let mut counts = vec![0u32; num_coarse as usize];
    for i in 0..n {
        counts[parent[i] as usize] =
            counts[parent[i] as usize].saturating_add(graph.count(i as u32));
    }
    let mut synapses: Vec<(u32, u32)> = Vec::new();
    for &(a, b) in graph.synapses() {
        let (ca, cb) = (parent[a as usize], parent[b as usize]);
        if ca != cb {
            synapses.push((ca, cb));
        }
    }
    let coarse = SpikeGraph::from_parts(num_coarse, synapses, counts)
        .expect("collapsed graph endpoints are in range by construction");
    Some(CoarseLevel {
        graph: coarse,
        capacity: next_cap,
        parent,
        matching_rate: f64::from(pairs) * 2.0 / n as f64,
    })
}

/// Boundary-driven KL/FM-style refinement: repeatedly propose the best
/// improving single-neuron move for every boundary neuron (in parallel
/// against a frozen cost state), then apply the proposals sequentially in
/// `(delta, neuron id)` order with re-pricing and capacity checks. Stops
/// when a round accepts nothing or after `max_rounds`.
///
/// Candidate target crossbars are restricted to the crossbars of each
/// neuron's CSR neighbors — the only destinations that can reduce any of
/// the cut objectives through that neuron's own edges.
///
/// Returns `(final cost, moves proposed, moves accepted)`. Byte-identical
/// for every `threads` value.
fn refine_boundary(
    problem: &PartitionProblem<'_>,
    kind: FitnessKind,
    assignment: &mut [u32],
    max_rounds: u32,
    threads: usize,
) -> (u64, u64, u64) {
    let engine = EvalEngine::new(*problem, kind);
    let mut state = engine.init(assignment);
    let graph = problem.graph();
    let cap = problem.capacity();
    let n = assignment.len();
    let mut occ = vec![0u32; problem.num_crossbars()];
    for &k in assignment.iter() {
        occ[k as usize] += 1;
    }
    let mut proposed: u64 = 0;
    let mut accepted: u64 = 0;

    for _ in 0..max_rounds {
        let mut boundary: Vec<u32> = Vec::new();
        for i in 0..n as u32 {
            let home = assignment[i as usize];
            let cut = graph
                .targets(i)
                .iter()
                .chain(graph.sources(i))
                .any(|&j| assignment[j as usize] != home);
            if cut {
                boundary.push(i);
            }
        }
        if boundary.is_empty() {
            break;
        }

        // Parallel propose against the frozen state: contiguous shards,
        // reduced in worker-index order, so the proposal list is
        // independent of the thread count.
        let workers = threads.min(boundary.len()).max(1);
        let base = boundary.len() / workers;
        let extra = boundary.len() % workers;
        let mut shards: Vec<(usize, usize)> = Vec::with_capacity(workers);
        let mut lo = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            shards.push((lo, lo + len));
            lo += len;
        }
        let frozen: &[u32] = assignment;
        let frozen_occ: &[u32] = &occ;
        let boundary_ref: &[u32] = &boundary;
        let state_ref = &state;
        let engine_ref = &engine;
        let mut proposals: Vec<(i64, u32, u32)> = Vec::new();
        pool::run_phased(
            shards,
            1,
            (),
            |_, (), &mut (lo, hi)| {
                let mut local: Vec<(i64, u32, u32)> = Vec::new();
                let mut cands: Vec<u32> = Vec::new();
                for &i in &boundary_ref[lo..hi] {
                    let from = frozen[i as usize];
                    cands.clear();
                    for &j in graph.targets(i).iter().chain(graph.sources(i)) {
                        let cb = frozen[j as usize];
                        if cb != from {
                            cands.push(cb);
                        }
                    }
                    cands.sort_unstable();
                    cands.dedup();
                    let mut best: Option<(i64, u32)> = None;
                    for &t in &cands {
                        if frozen_occ[t as usize] >= cap {
                            continue;
                        }
                        let d = engine_ref.move_delta(state_ref, frozen, i as usize, t);
                        if d < 0 && best.is_none_or(|(bd, bt)| d < bd || (d == bd && t < bt)) {
                            best = Some((d, t));
                        }
                    }
                    if let Some((d, t)) = best {
                        local.push((d, i, t));
                    }
                }
                local
            },
            |_, results| {
                for r in results {
                    proposals.extend(r);
                }
                None
            },
        );

        proposed += proposals.len() as u64;
        proposals.sort_unstable_by_key(|&(d, i, _)| (d, i));
        let mut any = false;
        for &(_, i, t) in &proposals {
            let i = i as usize;
            let from = assignment[i];
            if t == from || occ[t as usize] >= cap {
                continue;
            }
            // Earlier accepts invalidate frozen deltas: re-price and keep
            // only moves that still improve.
            let d = engine.move_delta(&state, assignment, i, t);
            if d < 0 {
                occ[from as usize] -= 1;
                occ[t as usize] += 1;
                engine.apply_priced_move(&mut state, assignment, i, t, d);
                accepted += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }

    debug_assert_eq!(state.cost(), problem.cost(kind, assignment));
    (state.cost(), proposed, accepted)
}

/// Per-level statistics from one V-cycle run, finest first (`levels[0]`
/// is the original problem).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Nodes at this level.
    pub num_neurons: u32,
    /// Synapses at this level.
    pub num_synapses: usize,
    /// Per-crossbar capacity at this level.
    pub capacity: u32,
    /// Fraction of this level's nodes matched into pairs when producing
    /// the next coarser level (0 at the coarsest).
    pub matching_rate: f64,
    /// Refinement moves proposed at this level.
    pub refine_proposed: u64,
    /// Refinement moves accepted at this level.
    pub refine_accepted: u64,
    /// Wall time spent at this level (PSO + refinement at the coarsest,
    /// refinement elsewhere).
    pub wall_s: f64,
}

/// Result of a multilevel V-cycle.
#[derive(Debug, Clone)]
pub struct MultilevelOutcome {
    /// The final (fine-level) mapping.
    pub mapping: Mapping,
    /// Its cost on the true fine problem under the configured fitness.
    pub cost: u64,
    /// Fine cost of the *unrefined* projection of the coarsest solution.
    /// `cost <= projected_cost` always (never-worse guard).
    pub projected_cost: u64,
    /// Whether the guard discarded the refined walk in favor of the pure
    /// projection.
    pub used_projection: bool,
    /// Per-level statistics, finest first.
    pub levels: Vec<LevelStats>,
    /// Best-so-far fitness per PSO round at the coarsest level.
    pub coarse_trace: Vec<u64>,
}

/// Runs the multilevel V-cycle: coarsen, PSO at the coarsest level,
/// project + refine back to the original problem.
///
/// When coarsening yields no levels (already-small instance or matching
/// stall) this degenerates to flat PSO plus one refinement pass on the
/// original problem.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] when `cfg` is out of domain,
/// `cfg.pso.fitness` is [`FitnessKind::CutHops`] and `problem` carries no
/// hop table, or `cfg.chips` does not evenly divide the crossbar count;
/// [`CoreError::Infeasible`] propagated from mapping construction.
pub fn vcycle(
    problem: &PartitionProblem<'_>,
    cfg: &MultilevelConfig,
) -> Result<MultilevelOutcome, CoreError> {
    cfg.validate()?;
    let kind = cfg.pso.fitness;
    if kind == FitnessKind::CutHops && problem.hops().is_none() {
        return Err(CoreError::InvalidParameter {
            name: "fitness",
            value: "CutHops requires a problem with hops attached".to_owned(),
        });
    }

    let stack = build_levels(problem, cfg);
    let num_coarse_levels = stack.num_levels();

    let mut stats: Vec<LevelStats> = Vec::with_capacity(num_coarse_levels + 1);
    for l in 0..=num_coarse_levels {
        let (g, capacity) = if l == 0 {
            (problem.graph(), problem.capacity())
        } else {
            let lev = stack.level(l - 1);
            (lev.graph(), lev.capacity())
        };
        stats.push(LevelStats {
            num_neurons: g.num_neurons(),
            num_synapses: g.num_synapses(),
            capacity,
            matching_rate: if l < num_coarse_levels {
                stack.level(l).matching_rate()
            } else {
                0.0
            },
            refine_proposed: 0,
            refine_accepted: 0,
            wall_s: 0.0,
        });
    }

    // PSO at the coarsest level (the original problem when no coarse
    // level exists), polished by boundary refinement. With a multi-chip
    // fabric the coarsest swarm assigns clusters to *chips* first, then
    // expands deterministically into each chip's crossbar range.
    let coarse_problem = if num_coarse_levels == 0 {
        *problem
    } else {
        stack.problem_at(num_coarse_levels - 1, problem)?
    };
    let t = Instant::now();
    let mut coarse_trace: Vec<u64> = Vec::new();
    let mut current = if cfg.chips > 1 {
        chip_level_assign(problem, &coarse_problem, cfg, &mut coarse_trace)?
    } else {
        let mut state = SwarmState::new(&coarse_problem, &cfg.pso);
        pso::run_rounds(
            &coarse_problem,
            &cfg.pso,
            &mut state,
            cfg.pso.iterations,
            true,
            &mut coarse_trace,
        );
        state.gbest_position
    };
    let (_, p, a) = refine_boundary(
        &coarse_problem,
        kind,
        &mut current,
        cfg.refine_rounds,
        cfg.threads,
    );
    stats[num_coarse_levels].refine_proposed = p;
    stats[num_coarse_levels].refine_accepted = a;
    stats[num_coarse_levels].wall_s = t.elapsed().as_secs_f64();

    // Pure projection of the coarsest solution down to the fine graph —
    // the yardstick for the never-worse guard.
    let mut projection = current.clone();
    for k in (0..num_coarse_levels).rev() {
        projection = stack.project(k, &projection);
    }
    let projected_cost = problem.cost(kind, &projection);

    // Uncoarsen: project one level at a time and repair the boundary.
    for k in (0..num_coarse_levels).rev() {
        let t = Instant::now();
        current = stack.project(k, &current);
        let level_problem = if k == 0 {
            *problem
        } else {
            stack.problem_at(k - 1, problem)?
        };
        debug_assert!(level_problem.is_feasible(&current));
        let (_, p, a) = refine_boundary(
            &level_problem,
            kind,
            &mut current,
            cfg.refine_rounds,
            cfg.threads,
        );
        stats[k].refine_proposed = p;
        stats[k].refine_accepted = a;
        stats[k].wall_s = t.elapsed().as_secs_f64();
    }

    let mut cost = problem.cost(kind, &current);
    let mut used_projection = false;
    if cost > projected_cost {
        current = projection;
        cost = projected_cost;
        used_projection = true;
    }

    Ok(MultilevelOutcome {
        mapping: problem.into_mapping(current)?,
        cost,
        projected_cost,
        used_projection,
        levels: stats,
        coarse_trace,
    })
}

/// The cluster → chip outer level: PSO over a chip-level problem (same
/// coarse graph, one "crossbar" per chip with the pooled capacity of the
/// chip's crossbar range), then a deterministic expansion packing each
/// chip's nodes — ascending id — into that chip's crossbar range at the
/// coarse per-crossbar capacity.
///
/// The chip objective is the configured fitness, except [`CutHops`]
/// drops to [`CutPackets`]: there is no chip-level hop table, and the
/// chip decision is exactly "minimize inter-chip traffic", which packets
/// price directly. The hop-aware pricing still governs every later
/// stage (boundary refinement and the fine-level never-worse guard run
/// on the true problem).
///
/// Feasibility: a chip holds at most `per_chip · cap` nodes, so packing
/// to `cap` per crossbar never leaves a chip's range — projecting the
/// result stays feasible by the stack's capacity-halving invariant.
///
/// [`CutHops`]: FitnessKind::CutHops
/// [`CutPackets`]: FitnessKind::CutPackets
fn chip_level_assign(
    problem: &PartitionProblem<'_>,
    coarse_problem: &PartitionProblem<'_>,
    cfg: &MultilevelConfig,
    trace: &mut Vec<u64>,
) -> Result<Vec<u32>, CoreError> {
    let c = problem.num_crossbars();
    let chips = cfg.chips;
    if !c.is_multiple_of(chips) {
        return Err(CoreError::InvalidParameter {
            name: "chips",
            value: format!("{chips} chips do not evenly divide {c} crossbars"),
        });
    }
    let per_chip = c / chips;
    let cap = coarse_problem.capacity();
    let chip_cap = u64::from(cap)
        .checked_mul(per_chip as u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(CoreError::InvalidParameter {
            name: "chips",
            value: format!("chip capacity {per_chip} x {cap} overflows u32"),
        })?;
    let mut chip_pso = cfg.pso;
    if chip_pso.fitness == FitnessKind::CutHops {
        chip_pso.fitness = FitnessKind::CutPackets;
    }
    let chip_problem = PartitionProblem::new(coarse_problem.graph(), chips, chip_cap)?;
    let mut state = SwarmState::new(&chip_problem, &chip_pso);
    pso::run_rounds(
        &chip_problem,
        &chip_pso,
        &mut state,
        chip_pso.iterations,
        true,
        trace,
    );
    let chip_of: Vec<u32> = state.gbest_position;

    // Deterministic expansion: per chip, nodes in ascending id fill the
    // chip's crossbars in order, `cap` nodes per crossbar.
    let mut fill = vec![0u32; c];
    let mut cursor: Vec<usize> = (0..chips).map(|q| q * per_chip).collect();
    let mut assignment = vec![0u32; chip_of.len()];
    for (i, &q) in chip_of.iter().enumerate() {
        let q = q as usize;
        let mut k = cursor[q];
        while fill[k] >= cap {
            k += 1;
        }
        debug_assert!(k < (q + 1) * per_chip, "chip {q} overflows its range");
        fill[k] += 1;
        cursor[q] = k;
        assignment[i] = k as u32;
    }
    Ok(assignment)
}

/// [`Partitioner`] adapter over [`vcycle`].
#[derive(Debug, Clone, Default)]
pub struct MultilevelPartitioner {
    config: MultilevelConfig,
}

impl MultilevelPartitioner {
    /// Builds a partitioner with the given configuration.
    pub fn new(config: MultilevelConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }
}

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> &'static str {
        "multilevel"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        Ok(vcycle(problem, &self.config)?.mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pso::PsoPartitioner;

    fn ring_graph(n: u32, count: u32) -> SpikeGraph {
        let synapses: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        SpikeGraph::from_parts(n, synapses, vec![count; n as usize]).unwrap()
    }

    fn clustered_graph(clusters: u32, size: u32) -> SpikeGraph {
        let n = clusters * size;
        let mut synapses = Vec::new();
        for c in 0..clusters {
            let base = c * size;
            for i in 0..size {
                for j in 0..size {
                    if i != j {
                        synapses.push((base + i, base + j));
                    }
                }
            }
            // one weak inter-cluster link to keep the graph connected
            synapses.push((base, (base + size) % n));
        }
        let counts = (0..n).map(|i| 5 + i % 7).collect();
        SpikeGraph::from_parts(n, synapses, counts).unwrap()
    }

    fn small_cfg() -> MultilevelConfig {
        MultilevelConfig {
            pso: PsoConfig {
                swarm_size: 12,
                iterations: 10,
                polish_passes: 0,
                ..PsoConfig::default()
            },
            min_coarse_neurons: 8,
            max_levels: 4,
            ..MultilevelConfig::default()
        }
    }

    #[test]
    fn coarsening_halves_capacity_and_preserves_feasibility() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        let stack = build_levels(&problem, &small_cfg());
        assert!(stack.num_levels() >= 1, "64 neurons must coarsen");
        let mut cap = 16;
        let mut prev_n = 64;
        for k in 0..stack.num_levels() {
            let lev = stack.level(k);
            cap /= 2;
            assert_eq!(lev.capacity(), cap);
            assert!(lev.graph().num_neurons() < prev_n);
            assert_eq!(lev.parent().len(), prev_n as usize);
            // every parent id in range, smallest-member ordering
            let mut first_seen = vec![u32::MAX; lev.graph().num_neurons() as usize];
            for (fine, &p) in lev.parent().iter().enumerate() {
                assert!(p < lev.graph().num_neurons());
                if first_seen[p as usize] == u32::MAX {
                    first_seen[p as usize] = fine as u32;
                }
            }
            assert!(first_seen.windows(2).all(|w| w[0] < w[1]));
            prev_n = lev.graph().num_neurons();
        }
    }

    #[test]
    fn coarse_counts_conserve_total_spikes() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        let stack = build_levels(&problem, &small_cfg());
        for k in 0..stack.num_levels() {
            assert_eq!(stack.level(k).graph().total_spikes(), g.total_spikes());
        }
    }

    #[test]
    fn vcycle_output_is_feasible_and_never_worse_than_projection() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        let out = vcycle(&problem, &small_cfg()).unwrap();
        assert!(problem.is_feasible(out.mapping.assignment()));
        assert!(out.cost <= out.projected_cost);
        assert_eq!(
            out.cost,
            problem.cost(FitnessKind::CutSpikes, out.mapping.assignment())
        );
        assert_eq!(
            out.levels.len(),
            build_levels(&problem, &small_cfg()).num_levels() + 1
        );
    }

    #[test]
    fn vcycle_is_deterministic_across_thread_counts() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        let mut base: Option<(Vec<u32>, u64)> = None;
        for threads in [1usize, 2, 4] {
            let mut cfg = small_cfg();
            cfg.threads = threads;
            cfg.pso.threads = threads;
            let out = vcycle(&problem, &cfg).unwrap();
            let key = (out.mapping.assignment().to_vec(), out.cost);
            match &base {
                None => base = Some(key),
                Some(b) => assert_eq!(*b, key, "threads={threads} diverged"),
            }
        }
    }

    #[test]
    fn degenerate_small_instance_falls_back_to_flat() {
        let g = ring_graph(12, 3);
        let problem = PartitionProblem::new(&g, 4, 4).unwrap();
        let mut cfg = small_cfg();
        cfg.min_coarse_neurons = 64; // never coarsen
        let out = vcycle(&problem, &cfg).unwrap();
        assert_eq!(out.levels.len(), 1);
        assert!(problem.is_feasible(out.mapping.assignment()));
    }

    #[test]
    fn refinement_improves_a_scrambled_assignment() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        // worst-case round-robin scatter: every cluster is split 8 ways
        let mut assignment: Vec<u32> = (0..64).map(|i| i % 8).collect();
        let before = problem.cost(FitnessKind::CutSpikes, &assignment);
        let (after, proposed, accepted) =
            refine_boundary(&problem, FitnessKind::CutSpikes, &mut assignment, 16, 2);
        assert!(proposed > 0);
        assert!(accepted > 0);
        assert!(after < before);
        assert!(problem.is_feasible(&assignment));
    }

    #[test]
    fn multilevel_partitioner_matches_vcycle() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        let cfg = small_cfg();
        let direct = vcycle(&problem, &cfg).unwrap();
        let via_trait = MultilevelPartitioner::new(cfg).partition(&problem).unwrap();
        assert_eq!(direct.mapping, via_trait);
    }

    #[test]
    fn vcycle_beats_or_matches_flat_pso_on_clustered_graph() {
        let g = clustered_graph(16, 8);
        let problem = PartitionProblem::new(&g, 16, 16).unwrap();
        let cfg = small_cfg();
        let ml = vcycle(&problem, &cfg).unwrap();
        let flat = PsoPartitioner::new(cfg.pso).partition(&problem).unwrap();
        let flat_cost = problem.cost(FitnessKind::CutSpikes, flat.assignment());
        assert!(
            ml.cost <= flat_cost,
            "multilevel {} vs flat {flat_cost}",
            ml.cost
        );
    }

    #[test]
    fn chip_outer_level_yields_feasible_mappings() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        for chips in [2usize, 4, 8] {
            let mut cfg = small_cfg();
            cfg.chips = chips;
            let out = vcycle(&problem, &cfg).unwrap();
            assert!(
                problem.is_feasible(out.mapping.assignment()),
                "{chips} chips"
            );
            assert!(out.cost <= out.projected_cost, "{chips} chips");
            assert_eq!(
                out.cost,
                problem.cost(FitnessKind::CutSpikes, out.mapping.assignment()),
                "{chips} chips"
            );
        }
    }

    #[test]
    fn chip_outer_level_is_deterministic_across_thread_counts() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        let mut base: Option<(Vec<u32>, u64)> = None;
        for threads in [1usize, 2, 4] {
            let mut cfg = small_cfg();
            cfg.chips = 4;
            cfg.threads = threads;
            cfg.pso.threads = threads;
            let out = vcycle(&problem, &cfg).unwrap();
            let key = (out.mapping.assignment().to_vec(), out.cost);
            match &base {
                None => base = Some(key),
                Some(b) => assert_eq!(*b, key, "threads={threads} diverged"),
            }
        }
    }

    #[test]
    fn chip_outer_level_works_under_cut_hops() {
        // CutHops at the chip level silently prices as CutPackets (no
        // chip hop table), but refinement and the guard stay hop-aware
        let g = clustered_graph(8, 8);
        let lut = neuromap_noc::topology::DistanceLut::new(
            &neuromap_noc::topology::Mesh2D::for_crossbars(8),
        );
        let problem = PartitionProblem::new(&g, 8, 16)
            .unwrap()
            .with_hops(&lut)
            .unwrap();
        let mut cfg = small_cfg();
        cfg.chips = 2;
        cfg.pso.fitness = FitnessKind::CutHops;
        let out = vcycle(&problem, &cfg).unwrap();
        assert!(problem.is_feasible(out.mapping.assignment()));
        assert_eq!(
            out.cost,
            problem.cost(FitnessKind::CutHops, out.mapping.assignment())
        );
    }

    #[test]
    fn chips_must_evenly_divide_crossbars() {
        let g = clustered_graph(8, 8);
        let problem = PartitionProblem::new(&g, 8, 16).unwrap();
        let mut cfg = small_cfg();
        cfg.chips = 3; // does not divide 8
        match vcycle(&problem, &cfg) {
            Err(CoreError::InvalidParameter { name, .. }) => assert_eq!(name, "chips"),
            other => panic!("expected chips rejection, got {other:?}"),
        }
        cfg.chips = 0;
        assert!(vcycle(&problem, &cfg).is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let g = ring_graph(12, 3);
        let problem = PartitionProblem::new(&g, 4, 4).unwrap();
        let cfg = MultilevelConfig {
            min_shrink: 0.0,
            ..MultilevelConfig::default()
        };
        assert!(vcycle(&problem, &cfg).is_err());
        let cfg = MultilevelConfig {
            threads: 0,
            ..MultilevelConfig::default()
        };
        assert!(vcycle(&problem, &cfg).is_err());
        let mut cfg = MultilevelConfig::default();
        cfg.pso.fitness = FitnessKind::CutHops;
        assert!(vcycle(&problem, &cfg).is_err(), "CutHops without hops");
    }
}
