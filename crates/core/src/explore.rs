//! Design-space exploration: the architecture sweep of the paper's Fig. 6
//! and the swarm-size sweep of Fig. 7.

use crate::error::CoreError;
use crate::graph::SpikeGraph;
use crate::partition::Partitioner;
use crate::pipeline::{MappingPipeline, PipelineConfig, Report};
use crate::pso::{PsoConfig, PsoPartitioner};
use neuromap_hw::energy::pj_to_uj;
use serde::{Deserialize, Serialize};

/// One point of the Fig. 6 architecture exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchPoint {
    /// Neurons per crossbar at this point.
    pub neurons_per_crossbar: u32,
    /// Crossbars needed for the application at that size.
    pub num_crossbars: usize,
    /// Local (in-crossbar) synapse energy, µJ.
    pub local_energy_uj: f64,
    /// Global (interconnect) synapse energy, µJ.
    pub global_energy_uj: f64,
    /// Total synapse energy, µJ.
    pub total_energy_uj: f64,
    /// Worst-case spike latency on the interconnect, cycles.
    pub worst_latency_cycles: u64,
}

/// Sweeps the crossbar size for a fixed application (Fig. 6): at each size
/// the chip is re-derived from `base` (same interconnect kind and energy
/// model), the SNN is re-partitioned, and local/global energy plus
/// worst-case latency are measured.
///
/// # Errors
///
/// Propagates any pipeline error for a sweep point.
pub fn architecture_sweep(
    graph: &SpikeGraph,
    base: &PipelineConfig,
    sizes: &[u32],
    partitioner: &dyn Partitioner,
) -> Result<Vec<ArchPoint>, CoreError> {
    let mut points = Vec::with_capacity(sizes.len());
    for &npc in sizes {
        let arch = base.arch.with_crossbar_size(npc, graph.num_neurons())?;
        let cfg = PipelineConfig {
            arch,
            noc: base.noc,
            traffic: base.traffic,
            engine: base.engine,
            placement: base.placement.clone(),
            partition: base.partition.clone(),
        };
        // each sweep point is a different chip, so each gets its own
        // staged pipeline (topology + distance table derived once per
        // point and shared across its stages)
        let pipeline = MappingPipeline::new(cfg);
        let report = pipeline.run(graph, partitioner)?;
        points.push(ArchPoint {
            neurons_per_crossbar: npc,
            num_crossbars: pipeline.config().arch.num_crossbars(),
            local_energy_uj: pj_to_uj(report.local_energy_pj),
            global_energy_uj: pj_to_uj(report.global_energy_pj),
            total_energy_uj: pj_to_uj(report.total_energy_pj),
            worst_latency_cycles: report.noc.max_latency_cycles,
        });
    }
    Ok(points)
}

/// One point of the Fig. 7 swarm-size exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwarmPoint {
    /// Particles in the swarm.
    pub swarm_size: usize,
    /// Best cut-spike fitness found.
    pub cut_spikes: u64,
    /// Interconnect energy of the resulting mapping, pJ.
    pub global_energy_pj: f64,
    /// Iteration at which the best was first reached.
    pub converged_at: u32,
}

/// Sweeps the PSO swarm size for a fixed application and architecture
/// (Fig. 7): all other PSO parameters come from `base` (the paper fixes
/// iterations at 100 and uses pure PSO — no warm start, no polish — which
/// is what makes the swarm-size dependence visible).
///
/// # Errors
///
/// Propagates PSO and pipeline errors.
pub fn swarm_sweep(
    graph: &SpikeGraph,
    config: &PipelineConfig,
    swarm_sizes: &[usize],
    base: PsoConfig,
) -> Result<Vec<SwarmPoint>, CoreError> {
    // one architecture across the whole sweep: build the staged pipeline
    // (topology + distance table) once and reuse it for every point
    let pipeline = MappingPipeline::new(config.clone());
    let problem = pipeline.problem(graph)?;
    let mut points = Vec::with_capacity(swarm_sizes.len());
    for &n in swarm_sizes {
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: n,
            ..base
        });
        let (mapping, trace) = pso.partition_traced(&problem)?;
        let cut = problem.cut_spikes(mapping.assignment());
        let report: Report = pipeline.evaluate(graph, mapping, "pso")?;
        points.push(SwarmPoint {
            swarm_size: n,
            cut_spikes: cut,
            global_energy_pj: report.global_energy_pj,
            converged_at: trace.converged_at,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::PacmanPartitioner;
    use neuromap_hw::arch::{Architecture, InterconnectKind};
    use neuromap_snn::spikes::SpikeTrain;

    fn graph() -> SpikeGraph {
        // 3 layers × 6 neurons, dense feedforward
        let mut synapses = Vec::new();
        for l in 0..2u32 {
            for a in 0..6u32 {
                for b in 0..6u32 {
                    synapses.push((l * 6 + a, (l + 1) * 6 + b));
                }
            }
        }
        let trains: Vec<SpikeTrain> = (0..18)
            .map(|i| SpikeTrain::from_times((0..8).map(|k| k * 40 + (i % 5)).collect()))
            .collect();
        SpikeGraph::from_trains(18, synapses, trains).unwrap()
    }

    #[test]
    fn sweep_shapes_match_figure6() {
        let g = graph();
        let base =
            PipelineConfig::for_arch(Architecture::custom(4, 6, InterconnectKind::Mesh).unwrap());
        let sizes = [3u32, 6, 9, 18];
        let pts = architecture_sweep(&g, &base, &sizes, &PacmanPartitioner::new()).unwrap();
        assert_eq!(pts.len(), 4);
        // crossbar count shrinks as size grows
        assert!(pts
            .windows(2)
            .all(|w| w[1].num_crossbars <= w[0].num_crossbars));
        // at the largest size everything is local
        let last = pts.last().unwrap();
        assert_eq!(last.global_energy_uj, 0.0);
        assert!(last.local_energy_uj > 0.0);
        // global energy decreases along the sweep
        assert!(pts
            .windows(2)
            .all(|w| w[1].global_energy_uj <= w[0].global_energy_uj));
    }

    #[test]
    fn architecture_sweep_crosses_the_64_crossbar_envelope() {
        // 90 neurons at crossbar sizes 1 and 5 → 90 and 18 crossbars: the
        // first sweep point runs the PSO's batched CutPackets evaluator
        // in its multi-word regime, the second in the single-word regime;
        // the reported cut must match a scalar recompute at every point
        let mut synapses = Vec::new();
        for a in 0..45u32 {
            synapses.push((a, a + 45));
            synapses.push((a, (a + 1) % 45));
        }
        let trains: Vec<SpikeTrain> = (0..90)
            .map(|i| SpikeTrain::from_times((0..5).map(|k| k * 50 + (i % 7)).collect()))
            .collect();
        let g = SpikeGraph::from_trains(90, synapses, trains).unwrap();
        let base =
            PipelineConfig::for_arch(Architecture::custom(90, 1, InterconnectKind::Mesh).unwrap());
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 6,
            iterations: 4,
            fitness: crate::partition::FitnessKind::CutPackets,
            polish_passes: 0,
            ..PsoConfig::default()
        });
        let pts = architecture_sweep(&g, &base, &[1, 5], &pso).unwrap();
        assert_eq!(pts.len(), 2);
        assert!(pts[0].num_crossbars > 64, "first point must be large-arch");
        assert!(pts[1].num_crossbars <= 64);
        // more capacity per crossbar keeps more synapses local
        assert!(pts[1].global_energy_uj <= pts[0].global_energy_uj);
        assert!(pts.iter().all(|p| p.total_energy_uj > 0.0));
    }

    #[test]
    fn architecture_sweep_carries_vc_config_onto_shallow_torus_points() {
        // the base NocConfig (shallow FIFOs + 2 VCs) must survive the
        // per-point chip re-derivation: every point simulates on the
        // wraparound fabric that would be deadlock-capable without VCs,
        // and single-VC wire shape rules keep per-VC stats visible
        use neuromap_noc::config::NocConfig;
        let g = graph();
        let arch = Architecture::custom(18, 1, InterconnectKind::Torus).unwrap();
        let mut base = PipelineConfig::for_arch(arch);
        base.noc = NocConfig {
            buffer_depth: 2,
            vc_count: 2,
            ..NocConfig::default()
        };
        let pts = architecture_sweep(&g, &base, &[1, 3], &PacmanPartitioner::new()).unwrap();
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.total_energy_uj > 0.0));
        // the first point (one neuron per crossbar) must push traffic
        // through the torus rings rather than staying local
        assert!(pts[0].global_energy_uj > 0.0);
    }

    #[test]
    fn swarm_sweep_improves_with_size() {
        let g = graph();
        let cfg =
            PipelineConfig::for_arch(Architecture::custom(3, 6, InterconnectKind::Star).unwrap());
        let base = PsoConfig {
            iterations: 20,
            seed: 9,
            seed_baselines: false,
            polish_passes: 0,
            ..PsoConfig::default()
        };
        let pts = swarm_sweep(&g, &cfg, &[2, 32], base).unwrap();
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].cut_spikes <= pts[0].cut_spikes,
            "32 particles must not lose to 2"
        );
    }
}
