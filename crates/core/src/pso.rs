//! Binary particle swarm optimization for SNN partitioning (paper §III).
//!
//! The search space has `D = N · C` binary dimensions: `x_{i,k} = 1` iff
//! neuron `i` sits on crossbar `k`. Velocities are real-valued and updated
//! with the canonical PSO rule (Eq. 1 with the standard stochastic
//! cognitive/social factors); positions are binarized through a sigmoid
//! (Eq. 2–3) and then **repaired** so that every particle always satisfies
//! the constraints: exactly one crossbar per neuron (Eq. 4) and crossbar
//! capacity (Eq. 5). The fitness is Eq. 8 — total spikes on the global
//! synapse interconnect — maintained incrementally through the shared
//! [`EvalEngine`](crate::eval::EvalEngine).
//!
//! ### Implementation notes (hot path)
//!
//! The swarm is stored **structure-of-arrays**: one contiguous velocity
//! buffer (`swarm × N × C` floats) and one contiguous assignment buffer
//! (`swarm × N`). Binary-PSO re-samples every neuron's crossbar each
//! iteration (measured churn 70%+), so per-particle O(deg) move deltas
//! cannot beat a full scan here; instead the whole shard is evaluated in
//! one pass over the CSR through [`SwarmEval`] — neuron-major byte tiles
//! whose per-edge lane compares vectorize and reuse every row `deg`
//! times from cache (multi-word remote-crossbar bitmasks keep the tiled
//! path up to 256 crossbars for both objectives). The per-candidate
//! incremental engine ([`crate::eval::EvalEngine`]) drives the low-churn
//! optimizers (refinement, SA, GA) instead.
//!
//! The velocity update, re-binarization, and capacity repair are one
//! **fused lane-parallel sweep** per particle ([`Decoder::step`] in
//! [`crate::decode`]): inertia decay, the ≤ 4 stochastically pulled
//! dimensions per neuron (`k ∈ {own, pbest, gbest}`), and the
//! eligibility-masked argmax of the decode all happen while the neuron's
//! velocity row is hot, so the `swarm × N × C` buffer is traversed once
//! per iteration instead of once for the velocity rule and again for the
//! decode. The kernel ships with a scalar reference implementation that
//! is bit-identical by construction and by property test.
//!
//! The whole particle step (fused velocity/decode sweep + evaluation +
//! personal-best tracking) runs on a persistent worker pool created once
//! per [`PsoPartitioner::partition_traced`] call (`core::pool`), not on
//! per-iteration spawned threads.
//!
//! ### Determinism contract
//!
//! Every particle owns its RNG stream (derived from the master seed in
//! particle order), workers own disjoint particle ranges, and the global
//! best is reduced in particle order on the caller's thread — so traces
//! are **byte-identical for any `threads` value**, including the
//! [`available_parallelism`](std::thread::available_parallelism) default.
//!
//! ### Faithfulness notes
//!
//! * The paper writes the velocity update without inertia or random
//!   factors; we use the standard constricted form (`w`, `φ₁·r₁`, `φ₂·r₂`)
//!   that Eberhart–Kennedy PSO implementations (including the ones the
//!   paper cites) use in practice. Setting `inertia = 1, stochastic
//!   factors` off reproduces the literal equation.
//! * The paper's Eq. 2 collapses the sigmoid to a hard step; the standard
//!   binary-PSO uses `rand() < sigmoid(v)`, which is what Eq. 3 samples.
//!   We implement the sampled form, testing candidate crossbars in
//!   descending-velocity order (the first accepted candidate *is* the
//!   highest-velocity accepted candidate, so this draws from the same
//!   distribution as testing every candidate independently).

use crate::decode::{DecodeScratch, Decoder, StepWeights};
use crate::error::CoreError;
use crate::eval::{SwarmEval, SwarmScratch};
use crate::partition::{FitnessKind, PartitionProblem, Partitioner};
use crate::pool;
use crate::refine::refine;
use neuromap_hw::mapping::Mapping;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// PSO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsoConfig {
    /// Number of particles (the paper sweeps 10–1000 and settles on 1000;
    /// the default here is a laptop-friendly 100).
    pub swarm_size: usize,
    /// Number of iterations (the paper fixes 100).
    pub iterations: u32,
    /// Inertia weight `w`.
    pub inertia: f32,
    /// Cognitive acceleration φ₁ (toward the particle's own best).
    pub phi_p: f32,
    /// Social acceleration φ₂ (toward the swarm best).
    pub phi_g: f32,
    /// Velocity clamp: `v ∈ [−v_max, v_max]`.
    pub v_max: f32,
    /// Master seed; every particle derives an independent stream.
    pub seed: u64,
    /// Worker threads for the particle step (defaults to
    /// [`std::thread::available_parallelism`]). Results are byte-identical
    /// for every value — this is purely an execution knob.
    pub threads: usize,
    /// Objective to minimize (Eq. 8 cut spikes by default).
    pub fitness: FitnessKind,
    /// Seed two particles with the PACMAN and NEUTRAMS baselines so the
    /// swarm never regresses below them (memetic warm start; disable to
    /// measure pure random-initialized PSO as in Fig. 7).
    pub seed_baselines: bool,
    /// Greedy single-neuron polish passes applied to the final best
    /// (0 disables). Closes the gap between laptop-scale swarms and the
    /// paper's 1000×100 cloud runs.
    pub polish_passes: u32,
}

/// Number of logical CPUs, used as the default `threads` for every
/// optimizer configuration.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Default for PsoConfig {
    fn default() -> Self {
        Self {
            swarm_size: 100,
            iterations: 100,
            inertia: 0.72,
            phi_p: 1.49,
            phi_g: 1.49,
            v_max: 4.0,
            seed: 0xDA5,
            threads: default_threads(),
            fitness: FitnessKind::CutSpikes,
            seed_baselines: true,
            polish_passes: 4,
        }
    }
}

impl PsoConfig {
    /// The paper's experimental setting: swarm 1000, 100 iterations,
    /// pure PSO (no warm start, no polish).
    pub fn paper() -> Self {
        Self {
            swarm_size: 1000,
            iterations: 100,
            seed_baselines: false,
            polish_passes: 0,
            ..Self::default()
        }
    }

    /// Validates hyperparameters.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for zero swarm/iterations/threads or
    /// non-positive `v_max`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.swarm_size == 0 {
            return Err(CoreError::InvalidParameter {
                name: "swarm_size",
                value: "0".into(),
            });
        }
        if self.iterations == 0 {
            return Err(CoreError::InvalidParameter {
                name: "iterations",
                value: "0".into(),
            });
        }
        if self.threads == 0 {
            return Err(CoreError::InvalidParameter {
                name: "threads",
                value: "0".into(),
            });
        }
        if self.v_max <= 0.0 || self.v_max.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "v_max",
                value: self.v_max.to_string(),
            });
        }
        Ok(())
    }
}

/// Convergence trace of one PSO run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsoTrace {
    /// Best fitness after each iteration (monotone non-increasing).
    pub best_per_iteration: Vec<u64>,
    /// Iteration at which the final best was first reached.
    pub converged_at: u32,
}

/// What a worker reports after stepping its particle range.
struct ShardReport {
    /// Best personal-best fitness in the shard.
    fitness: u64,
    /// Clone of the corresponding personal-best position — only made when
    /// it improves on the global best the shard saw this round.
    position: Option<Vec<u32>>,
}

/// One worker's particle range, as disjoint views into the swarm's
/// structure-of-arrays buffers.
struct Shard<'a, 'g> {
    evaluator: &'a SwarmEval<'g>,
    decoder: &'a Decoder,
    cfg: PsoConfig,
    n: usize,
    c: usize,
    /// Per-particle RNG seeds (drawn from the master stream in particle
    /// order on the caller's thread).
    seeds: &'a [u64],
    /// Warm-start assignments to inject after the initial decode, as
    /// (shard-local particle index, assignment).
    injections: Vec<(usize, Vec<u32>)>,
    velocity: &'a mut [f32],
    position: &'a mut [u32],
    best_position: &'a mut [u32],
    best_fitness: &'a mut [u64],
    rngs: Vec<StdRng>,
    // reusable scratch
    costs: Vec<u64>,
    scratch: SwarmScratch,
    decode_scratch: DecodeScratch,
}

impl Shard<'_, '_> {
    fn particles(&self) -> usize {
        self.seeds.len()
    }

    /// Round 0: create RNG streams, random velocities, initial decode,
    /// warm-start injection, and the initial full evaluation.
    fn init_round(&mut self) {
        let (n, c) = (self.n, self.c);
        let dims = n * c;
        self.rngs = self
            .seeds
            .iter()
            .map(|&s| StdRng::seed_from_u64(s))
            .collect();
        for p in 0..self.particles() {
            let rng = &mut self.rngs[p];
            let vel = &mut self.velocity[p * dims..(p + 1) * dims];
            self.decoder.fill_velocity(vel, rng);
            self.decoder.decode(
                vel,
                rng,
                &mut self.position[p * n..(p + 1) * n],
                &mut self.decode_scratch,
            );
        }
        for (p, seed_assignment) in std::mem::take(&mut self.injections) {
            self.position[p * n..(p + 1) * n].copy_from_slice(&seed_assignment);
        }
        self.evaluate_and_track_best(true);
    }

    /// Batched evaluation of every particle's current position, then
    /// personal-best bookkeeping ([`SwarmEval`] tiles the shard and
    /// vectorizes the cost kernels).
    fn evaluate_and_track_best(&mut self, initial: bool) {
        let n = self.n;
        let count = self.particles();
        self.costs.resize(count, 0);
        self.evaluator
            .eval_swarm(self.position, count, &mut self.scratch, &mut self.costs);
        for p in 0..count {
            let cost = self.costs[p];
            if initial || cost < self.best_fitness[p] {
                self.best_fitness[p] = cost;
                self.best_position[p * n..(p + 1) * n]
                    .copy_from_slice(&self.position[p * n..(p + 1) * n]);
            }
        }
    }

    /// One PSO step for every particle in the shard: the fused velocity
    /// update (Eq. 1) + re-binarization (Eq. 2–3) + repair (Eq. 4–5)
    /// sweep of [`Decoder::step`], then the batched evaluation.
    fn step_round(&mut self, gbest: &[u32]) {
        let n = self.n;
        let dims = n * self.c;
        let weights = StepWeights {
            inertia: self.cfg.inertia,
            phi_p: self.cfg.phi_p,
            phi_g: self.cfg.phi_g,
        };
        for p in 0..self.particles() {
            self.decoder.step(
                weights,
                &mut self.velocity[p * dims..(p + 1) * dims],
                &mut self.rngs[p],
                &mut self.position[p * n..(p + 1) * n],
                &self.best_position[p * n..(p + 1) * n],
                gbest,
                &mut self.decode_scratch,
            );
        }

        // --- batched evaluation + personal best ---
        self.evaluate_and_track_best(false);
    }

    /// Shard-local best (first index wins ties) and, when it beats the
    /// global best this shard saw, a clone of its position.
    fn report(&self, seen_gbest: u64) -> ShardReport {
        let n = self.n;
        let mut best = u64::MAX;
        let mut best_p = 0;
        for (p, &f) in self.best_fitness.iter().enumerate() {
            if f < best {
                best = f;
                best_p = p;
            }
        }
        let position =
            (best < seen_gbest).then(|| self.best_position[best_p * n..(best_p + 1) * n].to_vec());
        ShardReport {
            fitness: best,
            position,
        }
    }
}

/// Resumable swarm state: the structure-of-arrays buffers, per-particle
/// RNG streams, and the global best of a PSO search in flight.
///
/// Created by [`SwarmState::new`], advanced in segments by [`run_rounds`],
/// and re-valued by [`reseat_best`] when the objective changes underneath
/// the swarm — the joint co-optimization loop ([`crate::coopt`]) permutes
/// the hop-distance table between segments. One `run_rounds` call over the
/// full iteration budget is exactly the search
/// [`PsoPartitioner::partition_traced`] runs, byte for byte; segmenting it
/// changes nothing when the problem stays the same, because every particle
/// RNG stream is carried across segment boundaries in particle order.
pub(crate) struct SwarmState {
    n: usize,
    c: usize,
    /// Per-particle RNG seeds, drawn from the master stream in particle
    /// order (thread-count independent).
    seeds: Vec<u64>,
    /// Warm-start assignments, consumed by the init round.
    injections: Vec<(usize, Vec<u32>)>,
    velocity: Vec<f32>,
    position: Vec<u32>,
    best_position: Vec<u32>,
    best_fitness: Vec<u64>,
    /// Per-particle RNG streams in particle order; empty until the init
    /// round creates them (inside the shards, from `seeds`), then carried
    /// across `run_rounds` calls so segmented runs resume the exact
    /// streams an unsegmented run would use.
    rngs: Vec<StdRng>,
    /// Best fitness seen so far, under the problem of the last
    /// `run_rounds`/`reseat_best` call.
    pub(crate) gbest_fitness: u64,
    /// Position of the global best (length `n`).
    pub(crate) gbest_position: Vec<u32>,
}

impl SwarmState {
    /// Allocates the swarm for a problem: seeds every particle from the
    /// master stream and stages the memetic warm-start injections. No
    /// evaluation happens until the first [`run_rounds`] call.
    pub(crate) fn new(problem: &PartitionProblem<'_>, cfg: &PsoConfig) -> Self {
        let n = problem.graph().num_neurons() as usize;
        let c = problem.num_crossbars();
        let dims = n * c;
        let swarm = cfg.swarm_size;

        let mut master = StdRng::seed_from_u64(cfg.seed);
        let seeds: Vec<u64> = (0..swarm).map(|_| master.gen()).collect();

        // memetic warm start: drop the deterministic baselines into the
        // swarm so gbest starts no worse than any of them
        let mut injections: Vec<(usize, Vec<u32>)> = Vec::new();
        if cfg.seed_baselines {
            let cap = problem.capacity();
            let mut candidates: Vec<Vec<u32>> = Vec::new();
            // hierarchical population packing (the actual PACMAN layout)
            if let Ok(m) = crate::baselines::PacmanPartitioner::new().partition(problem) {
                candidates.push(m.assignment().to_vec());
            }
            // round-robin interleave (NEUTRAMS)
            candidates.push((0..n as u32).map(|i| i % c as u32).collect());
            // dense sequential packing
            candidates.push((0..n as u32).map(|i| i / cap).collect());
            let mut slot = 0;
            for cand in candidates {
                if slot < swarm && problem.is_feasible(&cand) {
                    injections.push((slot, cand));
                    slot += 1;
                }
            }
        }

        Self {
            n,
            c,
            seeds,
            injections,
            velocity: vec![0f32; swarm * dims],
            position: vec![0u32; swarm * n],
            best_position: vec![0u32; swarm * n],
            best_fitness: vec![u64::MAX; swarm],
            rngs: Vec::new(),
            gbest_fitness: u64::MAX,
            gbest_position: Vec::new(),
        }
    }

    /// Stages one more warm-start assignment for the init round, placed
    /// at particle `slot` (clamped to the swarm). Injections are applied
    /// in staging order, so a later injection at an occupied slot wins.
    /// Consumed by the next `init` round; a no-op afterwards.
    pub(crate) fn inject(&mut self, slot: usize, assignment: Vec<u32>) {
        debug_assert_eq!(assignment.len(), self.n);
        let slot = slot.min(self.seeds.len().saturating_sub(1));
        self.injections.push((slot, assignment));
    }
}

/// Advances the swarm by `rounds` PSO iterations on the worker pool,
/// appending the global best after each round to `trace`.
///
/// With `init` set, an extra round 0 runs first (RNG-stream creation,
/// random velocities, initial decode, warm-start injection, initial
/// evaluation) and also appends its entry — exactly the
/// `iterations + 1` phased rounds of a full [`PsoPartitioner`] run.
/// Without it, the call continues from the state's carried RNG streams
/// and global best, evaluating against `problem` as given — which may
/// attach a different hop table than the previous segment's
/// ([`reseat_best`] re-values the carried bests first in that case).
///
/// Deterministic for every `cfg.threads` value: shard carving, per-round
/// reduction order, and tie-breaking are all in particle order.
pub(crate) fn run_rounds(
    problem: &PartitionProblem<'_>,
    cfg: &PsoConfig,
    state: &mut SwarmState,
    rounds: u32,
    init: bool,
    trace: &mut Vec<u64>,
) {
    let (n, c) = (state.n, state.c);
    let dims = n * c;
    let swarm = state.seeds.len();
    let evaluator = SwarmEval::new(*problem, cfg.fitness);
    let decoder = Decoder::new(n, c, problem.capacity(), cfg.v_max);

    // carve the buffers into per-worker shards (deterministic layout;
    // the per-particle math is identical for every partitioning)
    let workers = cfg.threads.min(swarm).max(1);
    let SwarmState {
        seeds,
        injections,
        velocity,
        position,
        best_position,
        best_fitness,
        rngs,
        gbest_fitness,
        gbest_position,
        ..
    } = state;
    let mut shards: Vec<Shard<'_, '_>> = Vec::with_capacity(workers);
    {
        let mut seeds_rest = &seeds[..];
        let mut rngs_rest = std::mem::take(rngs);
        let (mut vel_rest, mut pos_rest, mut bpos_rest, mut bfit_rest) = (
            &mut velocity[..],
            &mut position[..],
            &mut best_position[..],
            &mut best_fitness[..],
        );
        let base = swarm / workers;
        let extra = swarm % workers;
        let mut first = 0usize;
        for w in 0..workers {
            let count = base + usize::from(w < extra);
            let (s, rest) = seeds_rest.split_at(count);
            seeds_rest = rest;
            let shard_rngs: Vec<StdRng> = if rngs_rest.is_empty() {
                Vec::new()
            } else {
                rngs_rest.drain(..count).collect()
            };
            let (v, rest) = vel_rest.split_at_mut(count * dims);
            vel_rest = rest;
            let (p, rest) = pos_rest.split_at_mut(count * n);
            pos_rest = rest;
            let (bp, rest) = bpos_rest.split_at_mut(count * n);
            bpos_rest = rest;
            let (bf, rest) = bfit_rest.split_at_mut(count);
            bfit_rest = rest;
            let local_inj = injections
                .iter()
                .filter(|(g, _)| (first..first + count).contains(g))
                .map(|(g, a)| (g - first, a.clone()))
                .collect();
            shards.push(Shard {
                evaluator: &evaluator,
                decoder: &decoder,
                cfg: *cfg,
                n,
                c,
                seeds: s,
                injections: local_inj,
                velocity: v,
                position: p,
                best_position: bp,
                best_fitness: bf,
                rngs: shard_rngs,
                costs: Vec::new(),
                scratch: SwarmScratch::default(),
                decode_scratch: DecodeScratch::default(),
            });
            first += count;
        }
    }
    injections.clear();

    let first_cmd = if init {
        (u64::MAX, Arc::new(Vec::new()))
    } else {
        (*gbest_fitness, Arc::new(gbest_position.clone()))
    };
    let mut gbest_shared: Arc<Vec<u32>> = Arc::clone(&first_cmd.1);
    let shards = pool::run_phased(
        shards,
        if init { rounds + 1 } else { rounds },
        first_cmd,
        |round, (seen_fit, seen_pos), shard| {
            if init && round == 0 {
                shard.init_round();
            } else {
                shard.step_round(seen_pos.as_slice());
            }
            shard.report(*seen_fit)
        },
        |_round, reports| {
            // worker-index order == particle order; strict `<` keeps
            // the first (lowest-index) particle on ties, matching a
            // sequential scan of the whole swarm
            let mut improved = false;
            for report in reports {
                if report.fitness < *gbest_fitness {
                    *gbest_fitness = report.fitness;
                    *gbest_position = report
                        .position
                        .expect("improving shard attaches its position");
                    improved = true;
                }
            }
            if improved {
                gbest_shared = Arc::new(gbest_position.clone());
            }
            trace.push(*gbest_fitness);
            Some((*gbest_fitness, Arc::clone(&gbest_shared)))
        },
    );
    // carry the RNG streams out of the shards, back into particle order
    state.rngs = shards.into_iter().flat_map(|s| s.rngs).collect();
}

/// Re-values the carried personal bests and the global best under a new
/// problem (same graph and shape, different fitness pricing — the joint
/// loop swaps the hop table between segments). Single-threaded and
/// deterministic: the global best is the first lowest-fitness particle,
/// the tie-break a sequential swarm scan uses.
pub(crate) fn reseat_best(problem: &PartitionProblem<'_>, cfg: &PsoConfig, state: &mut SwarmState) {
    let evaluator = SwarmEval::new(*problem, cfg.fitness);
    let mut scratch = SwarmScratch::default();
    let count = state.seeds.len();
    let mut costs = vec![0u64; count];
    evaluator.eval_swarm(&state.best_position, count, &mut scratch, &mut costs);
    state.best_fitness.copy_from_slice(&costs);
    let mut best = u64::MAX;
    let mut best_p = 0;
    for (p, &f) in costs.iter().enumerate() {
        if f < best {
            best = f;
            best_p = p;
        }
    }
    state.gbest_fitness = best;
    state.gbest_position = state.best_position[best_p * state.n..(best_p + 1) * state.n].to_vec();
}

/// The paper's PSO-based partitioner.
///
/// ```
/// use neuromap_core::graph::SpikeGraph;
/// use neuromap_core::partition::{Partitioner, PartitionProblem};
/// use neuromap_core::pso::{PsoConfig, PsoPartitioner};
///
/// # fn main() -> Result<(), neuromap_core::CoreError> {
/// // two dense 3-cliques joined by one weak synapse
/// let mut synapses = Vec::new();
/// for a in 0..3u32 { for b in 0..3u32 { if a != b { synapses.push((a, b)); } } }
/// for a in 3..6u32 { for b in 3..6u32 { if a != b { synapses.push((a, b)); } } }
/// synapses.push((2, 3));
/// let graph = SpikeGraph::from_parts(6, synapses, vec![10; 6])?;
/// let problem = PartitionProblem::new(&graph, 2, 3)?;
///
/// let pso = PsoPartitioner::new(PsoConfig { swarm_size: 30, iterations: 40, ..PsoConfig::default() });
/// let mapping = pso.partition(&problem)?;
/// // the optimum cuts only the bridge: 10 spikes
/// assert_eq!(problem.cut_spikes(mapping.assignment()), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PsoPartitioner {
    config: PsoConfig,
}

impl PsoPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: PsoConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PsoConfig {
        &self.config
    }

    /// Runs the optimization, returning the mapping and the convergence
    /// trace (Fig. 7-style analyses need the trace).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for invalid configuration,
    /// [`CoreError::Infeasible`] if the problem cannot be satisfied.
    pub fn partition_traced(
        &self,
        problem: &PartitionProblem<'_>,
    ) -> Result<(Mapping, PsoTrace), CoreError> {
        self.config.validate()?;
        let cfg = self.config;

        // round 0 = initial evaluation; rounds 1..=iterations = PSO steps
        let mut state = SwarmState::new(problem, &cfg);
        let mut best_per_iteration = Vec::new();
        run_rounds(
            problem,
            &cfg,
            &mut state,
            cfg.iterations,
            true,
            &mut best_per_iteration,
        );

        // converged_at = last round whose reduction improved the global
        // best (round 0, the initial evaluation, never counts)
        let mut converged_at = 0u32;
        for i in 1..best_per_iteration.len() {
            if best_per_iteration[i] < best_per_iteration[i - 1] {
                converged_at = i as u32;
            }
        }
        let mut trace = PsoTrace {
            best_per_iteration,
            converged_at,
        };
        let mut gbest_fit = state.gbest_fitness;
        let mut gbest_pos = state.gbest_position;

        // greedy polish of the final best
        if cfg.polish_passes > 0 {
            let polished = refine(problem, cfg.fitness, &mut gbest_pos, cfg.polish_passes);
            if polished < gbest_fit {
                gbest_fit = polished;
                trace.converged_at = cfg.iterations;
            }
            trace.best_per_iteration.push(gbest_fit);
        }

        let mapping = problem.into_mapping(gbest_pos)?;
        Ok((mapping, trace))
    }
}

impl Partitioner for PsoPartitioner {
    fn name(&self) -> &'static str {
        "pso"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        self.partition_traced(problem).map(|(m, _)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    fn two_clusters(bridge_spikes: u32) -> SpikeGraph {
        let mut synapses = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    synapses.push((a, b));
                }
            }
        }
        for a in 4..8u32 {
            for b in 4..8u32 {
                if a != b {
                    synapses.push((a, b));
                }
            }
        }
        synapses.push((0, 4));
        let mut counts = vec![50u32; 8];
        counts[0] = bridge_spikes;
        SpikeGraph::from_parts(8, synapses, counts).unwrap()
    }

    #[test]
    fn finds_the_natural_bipartition() {
        let g = two_clusters(50);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 40,
            iterations: 60,
            ..PsoConfig::default()
        });
        let m = pso.partition(&p).unwrap();
        // optimum: clusters separated, only the bridge cut → 50 spikes
        assert_eq!(p.cut_spikes(m.assignment()), 50);
    }

    #[test]
    fn respects_capacity() {
        let g = two_clusters(10);
        let p = PartitionProblem::new(&g, 4, 2).unwrap();
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 20,
            iterations: 20,
            ..PsoConfig::default()
        });
        let m = pso.partition(&p).unwrap();
        assert!(m.occupancy().iter().all(|&o| o <= 2));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_clusters(25);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let cfg = PsoConfig {
            swarm_size: 15,
            iterations: 15,
            seed: 7,
            ..PsoConfig::default()
        };
        let a = PsoPartitioner::new(cfg).partition(&p).unwrap();
        let b = PsoPartitioner::new(cfg).partition(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = two_clusters(25);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let seq = PsoConfig {
            swarm_size: 16,
            iterations: 10,
            threads: 1,
            ..PsoConfig::default()
        };
        for threads in [2, 3, 4, 16] {
            let par = PsoConfig { threads, ..seq };
            let (a, ta) = PsoPartitioner::new(seq).partition_traced(&p).unwrap();
            let (b, tb) = PsoPartitioner::new(par).partition_traced(&p).unwrap();
            assert_eq!(
                a, b,
                "threading must not change results ({threads} threads)"
            );
            assert_eq!(
                ta, tb,
                "threading must not change traces ({threads} threads)"
            );
        }
    }

    #[test]
    fn incremental_matches_full_recompute_path() {
        // forcing every sync through the full-recompute fallback must not
        // change anything (the engine contract, end to end through PSO)
        let g = two_clusters(30);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        for fitness in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
            let cfg = PsoConfig {
                swarm_size: 12,
                iterations: 12,
                fitness,
                ..PsoConfig::default()
            };
            let (m, t) = PsoPartitioner::new(cfg).partition_traced(&p).unwrap();
            let full = p.cost(fitness, m.assignment());
            assert_eq!(
                *t.best_per_iteration.last().unwrap(),
                full,
                "{fitness:?}: trace must match a full recompute of the result"
            );
        }
    }

    #[test]
    fn trace_is_monotone() {
        let g = two_clusters(30);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 20,
            iterations: 25,
            ..PsoConfig::default()
        });
        let (_, trace) = pso.partition_traced(&p).unwrap();
        // iterations + initial entry + one polish entry (polish on by default)
        assert_eq!(trace.best_per_iteration.len(), 27);
        assert!(trace.best_per_iteration.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn bigger_swarms_do_not_do_worse() {
        // the Fig. 7 premise: more particles → equal or better energy
        let g = two_clusters(40);
        let p = PartitionProblem::new(&g, 4, 2).unwrap();
        let run = |n: usize| {
            let pso = PsoPartitioner::new(PsoConfig {
                swarm_size: n,
                iterations: 30,
                seed: 11,
                ..PsoConfig::default()
            });
            let m = pso.partition(&p).unwrap();
            p.cut_spikes(m.assignment())
        };
        assert!(run(64) <= run(4));
    }

    #[test]
    fn invalid_config_rejected() {
        let g = two_clusters(1);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 0,
            ..PsoConfig::default()
        });
        assert!(pso.partition(&p).is_err());
        let pso = PsoPartitioner::new(PsoConfig {
            threads: 0,
            ..PsoConfig::default()
        });
        assert!(pso.partition(&p).is_err());
    }

    #[test]
    fn threads_default_to_available_parallelism() {
        assert_eq!(PsoConfig::default().threads, default_threads());
        assert!(PsoConfig::default().threads >= 1);
    }

    #[test]
    fn large_arch_pso_stays_batched_and_consistent() {
        // 81 crossbars: the multi-word CutPackets envelope, end to end
        // through a PSO run — trace tail must equal a scalar recompute
        let g = two_clusters(30);
        // widen the graph so an 81-crossbar instance is feasible
        let mut synapses = g.synapses().to_vec();
        for i in 8..90u32 {
            synapses.push((i % 8, i));
        }
        let g = SpikeGraph::from_parts(90, synapses, vec![3; 90]).unwrap();
        let p = PartitionProblem::new(&g, 81, 2).unwrap();
        assert!(SwarmEval::new(p, FitnessKind::CutPackets).batched());
        let cfg = PsoConfig {
            swarm_size: 10,
            iterations: 8,
            fitness: FitnessKind::CutPackets,
            seed_baselines: false,
            polish_passes: 0,
            ..PsoConfig::default()
        };
        let (m, t) = PsoPartitioner::new(cfg).partition_traced(&p).unwrap();
        assert_eq!(
            *t.best_per_iteration.last().unwrap(),
            p.cut_packets(m.assignment())
        );
    }
}
