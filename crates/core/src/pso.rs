//! Binary particle swarm optimization for SNN partitioning (paper §III).
//!
//! The search space has `D = N · C` binary dimensions: `x_{i,k} = 1` iff
//! neuron `i` sits on crossbar `k`. Velocities are real-valued and updated
//! with the canonical PSO rule (Eq. 1 with the standard stochastic
//! cognitive/social factors); positions are binarized through a sigmoid
//! (Eq. 2–3) and then **repaired** so that every particle always satisfies
//! the constraints: exactly one crossbar per neuron (Eq. 4) and crossbar
//! capacity (Eq. 5). The fitness is Eq. 8 — total spikes on the global
//! synapse interconnect — evaluated through
//! [`PartitionProblem::cut_spikes`].
//!
//! ### Faithfulness notes
//!
//! * The paper writes the velocity update without inertia or random
//!   factors; we use the standard constricted form (`w`, `φ₁·r₁`, `φ₂·r₂`)
//!   that Eberhart–Kennedy PSO implementations (including the ones the
//!   paper cites) use in practice. Setting `inertia = 1, stochastic
//!   factors` off reproduces the literal equation.
//! * The paper's Eq. 2 collapses the sigmoid to a hard step; the standard
//!   binary-PSO uses `rand() < sigmoid(v)`, which is what Eq. 3 samples.
//!   We implement the sampled form.
//!
//! Fitness evaluation is embarrassingly parallel across particles; set
//! [`PsoConfig::threads`] > 1 for multithreaded evaluation (results remain
//! deterministic: every particle owns its RNG stream).

use crate::error::CoreError;
use crate::partition::{FitnessKind, Partitioner, PartitionProblem};
use crate::refine::refine;
use neuromap_hw::mapping::Mapping;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// PSO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsoConfig {
    /// Number of particles (the paper sweeps 10–1000 and settles on 1000;
    /// the default here is a laptop-friendly 100).
    pub swarm_size: usize,
    /// Number of iterations (the paper fixes 100).
    pub iterations: u32,
    /// Inertia weight `w`.
    pub inertia: f32,
    /// Cognitive acceleration φ₁ (toward the particle's own best).
    pub phi_p: f32,
    /// Social acceleration φ₂ (toward the swarm best).
    pub phi_g: f32,
    /// Velocity clamp: `v ∈ [−v_max, v_max]`.
    pub v_max: f32,
    /// Master seed; every particle derives an independent stream.
    pub seed: u64,
    /// Worker threads for fitness evaluation (1 = sequential).
    pub threads: usize,
    /// Objective to minimize (Eq. 8 cut spikes by default).
    pub fitness: FitnessKind,
    /// Seed two particles with the PACMAN and NEUTRAMS baselines so the
    /// swarm never regresses below them (memetic warm start; disable to
    /// measure pure random-initialized PSO as in Fig. 7).
    pub seed_baselines: bool,
    /// Greedy single-neuron polish passes applied to the final best
    /// (0 disables). Closes the gap between laptop-scale swarms and the
    /// paper's 1000×100 cloud runs.
    pub polish_passes: u32,
}

impl Default for PsoConfig {
    fn default() -> Self {
        Self {
            swarm_size: 100,
            iterations: 100,
            inertia: 0.72,
            phi_p: 1.49,
            phi_g: 1.49,
            v_max: 4.0,
            seed: 0xDA5,
            threads: 1,
            fitness: FitnessKind::CutSpikes,
            seed_baselines: true,
            polish_passes: 4,
        }
    }
}

impl PsoConfig {
    /// The paper's experimental setting: swarm 1000, 100 iterations,
    /// pure PSO (no warm start, no polish).
    pub fn paper() -> Self {
        Self {
            swarm_size: 1000,
            iterations: 100,
            seed_baselines: false,
            polish_passes: 0,
            ..Self::default()
        }
    }

    /// Validates hyperparameters.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for zero swarm/iterations/threads or
    /// non-positive `v_max`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.swarm_size == 0 {
            return Err(CoreError::InvalidParameter { name: "swarm_size", value: "0".into() });
        }
        if self.iterations == 0 {
            return Err(CoreError::InvalidParameter { name: "iterations", value: "0".into() });
        }
        if self.threads == 0 {
            return Err(CoreError::InvalidParameter { name: "threads", value: "0".into() });
        }
        if self.v_max <= 0.0 || self.v_max.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "v_max",
                value: self.v_max.to_string(),
            });
        }
        Ok(())
    }
}

/// Convergence trace of one PSO run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsoTrace {
    /// Best fitness after each iteration (monotone non-increasing).
    pub best_per_iteration: Vec<u64>,
    /// Iteration at which the final best was first reached.
    pub converged_at: u32,
}

/// One particle: real-valued velocities over N×C plus its current and best
/// assignments.
struct Particle {
    velocity: Vec<f32>,
    assignment: Vec<u32>,
    best_assignment: Vec<u32>,
    best_fitness: u64,
    rng: StdRng,
}

/// The paper's PSO-based partitioner.
///
/// ```
/// use neuromap_core::graph::SpikeGraph;
/// use neuromap_core::partition::{Partitioner, PartitionProblem};
/// use neuromap_core::pso::{PsoConfig, PsoPartitioner};
///
/// # fn main() -> Result<(), neuromap_core::CoreError> {
/// // two dense 3-cliques joined by one weak synapse
/// let mut synapses = Vec::new();
/// for a in 0..3u32 { for b in 0..3u32 { if a != b { synapses.push((a, b)); } } }
/// for a in 3..6u32 { for b in 3..6u32 { if a != b { synapses.push((a, b)); } } }
/// synapses.push((2, 3));
/// let graph = SpikeGraph::from_parts(6, synapses, vec![10; 6])?;
/// let problem = PartitionProblem::new(&graph, 2, 3)?;
///
/// let pso = PsoPartitioner::new(PsoConfig { swarm_size: 30, iterations: 40, ..PsoConfig::default() });
/// let mapping = pso.partition(&problem)?;
/// // the optimum cuts only the bridge: 10 spikes
/// assert_eq!(problem.cut_spikes(mapping.assignment()), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PsoPartitioner {
    config: PsoConfig,
}

impl PsoPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: PsoConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PsoConfig {
        &self.config
    }

    /// Runs the optimization, returning the mapping and the convergence
    /// trace (Fig. 7-style analyses need the trace).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for invalid configuration,
    /// [`CoreError::Infeasible`] if the problem cannot be satisfied.
    pub fn partition_traced(
        &self,
        problem: &PartitionProblem<'_>,
    ) -> Result<(Mapping, PsoTrace), CoreError> {
        self.config.validate()?;
        let n = problem.graph().num_neurons() as usize;
        let c = problem.num_crossbars();
        let dims = n * c;
        let cfg = &self.config;

        let mut master = StdRng::seed_from_u64(cfg.seed);
        let mut particles: Vec<Particle> = (0..cfg.swarm_size)
            .map(|_| {
                let mut rng = StdRng::seed_from_u64(master.gen());
                let velocity: Vec<f32> =
                    (0..dims).map(|_| rng.gen_range(-cfg.v_max..cfg.v_max)).collect();
                let assignment = decode(&velocity, n, c, problem.capacity(), &mut rng);
                Particle {
                    velocity,
                    assignment,
                    best_assignment: Vec::new(),
                    best_fitness: u64::MAX,
                    rng,
                }
            })
            .collect();

        // memetic warm start: drop the deterministic baselines into the
        // swarm so gbest starts no worse than any of them
        if cfg.seed_baselines {
            let cap = problem.capacity();
            let mut seeds: Vec<Vec<u32>> = Vec::new();
            // hierarchical population packing (the actual PACMAN layout)
            if let Ok(m) = crate::baselines::PacmanPartitioner::new().partition(problem) {
                seeds.push(m.assignment().to_vec());
            }
            // round-robin interleave (NEUTRAMS)
            seeds.push((0..n as u32).map(|i| i % c as u32).collect());
            // dense sequential packing
            seeds.push((0..n as u32).map(|i| i / cap).collect());
            let mut slot = 0;
            for seed in seeds {
                if slot < particles.len() && problem.is_feasible(&seed) {
                    particles[slot].assignment = seed;
                    slot += 1;
                }
            }
        }

        // initial evaluation
        let fits = fitnesses(&particles, problem, cfg.fitness, cfg.threads);
        for (p, &fit) in particles.iter_mut().zip(&fits) {
            p.best_fitness = fit;
            p.best_assignment = p.assignment.clone();
        }
        let (mut gbest, mut gbest_fit) = global_best(&particles);
        let mut trace = PsoTrace {
            best_per_iteration: vec![gbest_fit],
            converged_at: 0,
        };

        for iter in 1..=cfg.iterations {
            for p in &mut particles {
                step_particle(p, &gbest, n, c, problem.capacity(), cfg);
            }
            let fits = fitnesses(&particles, problem, cfg.fitness, cfg.threads);
            for (p, &fit) in particles.iter_mut().zip(&fits) {
                if fit < p.best_fitness {
                    p.best_fitness = fit;
                    p.best_assignment = p.assignment.clone();
                }
            }
            let (cand, cand_fit) = global_best(&particles);
            if cand_fit < gbest_fit {
                gbest = cand;
                gbest_fit = cand_fit;
                trace.converged_at = iter;
            }
            trace.best_per_iteration.push(gbest_fit);
        }

        // greedy polish of the final best
        if cfg.polish_passes > 0 {
            let polished = refine(problem, cfg.fitness, &mut gbest, cfg.polish_passes);
            if polished < gbest_fit {
                gbest_fit = polished;
                trace.converged_at = cfg.iterations;
            }
            trace.best_per_iteration.push(gbest_fit);
        }

        let mapping = problem.into_mapping(gbest)?;
        Ok((mapping, trace))
    }
}

impl Partitioner for PsoPartitioner {
    fn name(&self) -> &'static str {
        "pso"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        self.partition_traced(problem).map(|(m, _)| m)
    }
}

/// Velocity update + re-binarization for one particle.
#[allow(clippy::needless_range_loop)] // `i` is the neuron id across several arrays
fn step_particle(
    p: &mut Particle,
    gbest: &[u32],
    n: usize,
    c: usize,
    capacity: u32,
    cfg: &PsoConfig,
) {
    for i in 0..n {
        let own = p.assignment[i];
        let pb = p.best_assignment[i];
        let gb = gbest[i];
        let base = i * c;
        for k in 0..c {
            let x = (own == k as u32) as u8 as f32;
            let pbx = (pb == k as u32) as u8 as f32;
            let gbx = (gb == k as u32) as u8 as f32;
            let r1: f32 = p.rng.gen();
            let r2: f32 = p.rng.gen();
            let v = cfg.inertia * p.velocity[base + k]
                + cfg.phi_p * r1 * (pbx - x)
                + cfg.phi_g * r2 * (gbx - x);
            p.velocity[base + k] = v.clamp(-cfg.v_max, cfg.v_max);
        }
    }
    p.assignment = decode(&p.velocity, n, c, capacity, &mut p.rng);
}

/// Sigmoid.
#[inline]
fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Binarizes velocities into a feasible assignment:
/// per neuron, sample `x_{i,k} = 1` with probability `sigmoid(v_{i,k})`
/// (Eq. 2–3), then repair — among sampled crossbars with free capacity pick
/// the highest-velocity one; if none qualifies fall back to the
/// highest-velocity crossbar with free capacity.
#[allow(clippy::needless_range_loop)] // `i` is the neuron id across several arrays
fn decode(velocity: &[f32], n: usize, c: usize, capacity: u32, rng: &mut StdRng) -> Vec<u32> {
    let mut remaining = vec![capacity; c];
    let mut assignment = vec![0u32; n];
    for i in 0..n {
        let base = i * c;
        let mut chosen: Option<usize> = None;
        let mut chosen_v = f32::NEG_INFINITY;
        // sampled candidate set (Eq. 3)
        for k in 0..c {
            if remaining[k] == 0 {
                continue;
            }
            let v = velocity[base + k];
            if rng.gen::<f32>() < sigmoid(v) && v > chosen_v {
                chosen = Some(k);
                chosen_v = v;
            }
        }
        // repair: best free crossbar by velocity
        let k = chosen.unwrap_or_else(|| {
            (0..c)
                .filter(|&k| remaining[k] > 0)
                .max_by(|&a, &b| {
                    velocity[base + a]
                        .partial_cmp(&velocity[base + b])
                        .expect("velocities are finite")
                })
                .expect("total capacity ≥ neurons")
        });
        remaining[k] -= 1;
        assignment[i] = k as u32;
    }
    assignment
}

fn fitness_of(problem: &PartitionProblem<'_>, kind: FitnessKind, assignment: &[u32]) -> u64 {
    problem.cost(kind, assignment)
}

/// Evaluates all particles' current assignments, optionally across worker
/// threads. Deterministic: output order matches particle order regardless
/// of thread count.
fn fitnesses(
    particles: &[Particle],
    problem: &PartitionProblem<'_>,
    kind: FitnessKind,
    threads: usize,
) -> Vec<u64> {
    if threads <= 1 || particles.len() < 2 {
        return particles
            .iter()
            .map(|p| fitness_of(problem, kind, &p.assignment))
            .collect();
    }
    let mut out = vec![0u64; particles.len()];
    let chunk = particles.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (ps, fs) in particles.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (p, f) in ps.iter().zip(fs.iter_mut()) {
                    *f = fitness_of(problem, kind, &p.assignment);
                }
            });
        }
    });
    out
}

fn global_best(particles: &[Particle]) -> (Vec<u32>, u64) {
    let best = particles
        .iter()
        .min_by_key(|p| p.best_fitness)
        .expect("swarm is non-empty");
    (best.best_assignment.clone(), best.best_fitness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    fn two_clusters(bridge_spikes: u32) -> SpikeGraph {
        let mut synapses = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    synapses.push((a, b));
                }
            }
        }
        for a in 4..8u32 {
            for b in 4..8u32 {
                if a != b {
                    synapses.push((a, b));
                }
            }
        }
        synapses.push((0, 4));
        let mut counts = vec![50u32; 8];
        counts[0] = bridge_spikes;
        SpikeGraph::from_parts(8, synapses, counts).unwrap()
    }

    #[test]
    fn finds_the_natural_bipartition() {
        let g = two_clusters(50);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 40,
            iterations: 60,
            ..PsoConfig::default()
        });
        let m = pso.partition(&p).unwrap();
        // optimum: clusters separated, only the bridge cut → 50 spikes
        assert_eq!(p.cut_spikes(m.assignment()), 50);
    }

    #[test]
    fn respects_capacity() {
        let g = two_clusters(10);
        let p = PartitionProblem::new(&g, 4, 2).unwrap();
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 20,
            iterations: 20,
            ..PsoConfig::default()
        });
        let m = pso.partition(&p).unwrap();
        assert!(m.occupancy().iter().all(|&o| o <= 2));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_clusters(25);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let cfg = PsoConfig { swarm_size: 15, iterations: 15, seed: 7, ..PsoConfig::default() };
        let a = PsoPartitioner::new(cfg).partition(&p).unwrap();
        let b = PsoPartitioner::new(cfg).partition(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = two_clusters(25);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let seq = PsoConfig { swarm_size: 16, iterations: 10, threads: 1, ..PsoConfig::default() };
        let par = PsoConfig { threads: 4, ..seq };
        let a = PsoPartitioner::new(seq).partition(&p).unwrap();
        let b = PsoPartitioner::new(par).partition(&p).unwrap();
        assert_eq!(a, b, "threading must not change results");
    }

    #[test]
    fn trace_is_monotone() {
        let g = two_clusters(30);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 20,
            iterations: 25,
            ..PsoConfig::default()
        });
        let (_, trace) = pso.partition_traced(&p).unwrap();
        // iterations + initial entry + one polish entry (polish on by default)
        assert_eq!(trace.best_per_iteration.len(), 27);
        assert!(trace
            .best_per_iteration
            .windows(2)
            .all(|w| w[1] <= w[0]));
    }

    #[test]
    fn bigger_swarms_do_not_do_worse() {
        // the Fig. 7 premise: more particles → equal or better energy
        let g = two_clusters(40);
        let p = PartitionProblem::new(&g, 4, 2).unwrap();
        let run = |n: usize| {
            let pso = PsoPartitioner::new(PsoConfig {
                swarm_size: n,
                iterations: 30,
                seed: 11,
                ..PsoConfig::default()
            });
            let m = pso.partition(&p).unwrap();
            p.cut_spikes(m.assignment())
        };
        assert!(run(64) <= run(4));
    }

    #[test]
    fn invalid_config_rejected() {
        let g = two_clusters(1);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let pso = PsoPartitioner::new(PsoConfig { swarm_size: 0, ..PsoConfig::default() });
        assert!(pso.partition(&p).is_err());
    }

    #[test]
    fn decode_always_feasible() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let n = 13;
            let c = 4;
            let cap = 4; // 16 ≥ 13
            let velocity: Vec<f32> = (0..n * c).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let a = decode(&velocity, n, c, cap, &mut rng);
            let mut occ = vec![0u32; c];
            for &k in &a {
                occ[k as usize] += 1;
            }
            assert!(occ.iter().all(|&o| o <= cap));
            assert_eq!(a.len(), n);
        }
    }
}
