//! # neuromap-core — PSO-based partitioning of SNNs onto neuromorphic hardware
//!
//! The primary contribution of Das et al., *"Mapping of Local and Global
//! Synapses on Spiking Neuromorphic Hardware"* (DATE 2018): partition a
//! trained spiking neural network into **local synapses** (mapped inside
//! crossbars) and **global synapses** (mapped on the time-multiplexed
//! interconnect) such that spike traffic on the interconnect — and with it
//! energy, latency, spike disorder and ISI distortion — is minimized.
//!
//! ## The optimization problem (paper §III)
//!
//! Given a spike graph `G = (A, S)` where each synapse `(i, j)` carries the
//! spike count of its presynaptic neuron, assign every neuron to one of `C`
//! crossbars (Eq. 4) of capacity `Nc` (Eq. 5) minimizing the total number of
//! spikes crossing crossbar boundaries (Eq. 7–8).
//!
//! * [`graph::SpikeGraph`] — the trained-SNN representation (from
//!   `neuromap-snn` simulation output or built directly);
//! * [`partition::PartitionProblem`] — constraints + the cut-spike cost;
//! * [`pso::PsoPartitioner`] — the paper's binary particle swarm optimizer;
//! * [`baselines`] — PACMAN (SpiNNaker sequential packing), NEUTRAMS
//!   (partition-oblivious round-robin), random packing, plus simulated
//!   annealing and a genetic algorithm for the paper's "PSO converges
//!   faster than GA/SA" claim;
//! * [`pipeline`] — the staged flow: SNN → spike graph → partition →
//!   place → packetize → interconnect simulation → [`pipeline::Report`]
//!   ([`pipeline::MappingPipeline`]);
//! * [`place`] — the hop-aware cluster-placement stage (SpiNeMap-style):
//!   a deterministic QAP optimizer mapping logical clusters onto physical
//!   crossbars to minimize hop-weighted packets;
//! * [`explore`] — the architecture sweep of Fig. 6 and the swarm-size
//!   sweep of Fig. 7;
//! * [`remap`] — bounded incremental run-time remapping (the paper's
//!   stated future work, §VI).
//!
//! ## Quickstart
//!
//! ```
//! use neuromap_core::graph::SpikeGraph;
//! use neuromap_core::partition::PartitionProblem;
//! use neuromap_core::pso::{PsoConfig, PsoPartitioner};
//! use neuromap_core::partition::Partitioner;
//!
//! # fn main() -> Result<(), neuromap_core::CoreError> {
//! // 4 neurons in a chain, neuron 0 spikes 10 times, the rest relay
//! let graph = SpikeGraph::from_parts(
//!     4,
//!     vec![(0, 1), (1, 2), (2, 3)],
//!     vec![10, 10, 10, 10],
//! )?;
//! let problem = PartitionProblem::new(&graph, 2, 2)?;
//! let pso = PsoPartitioner::new(PsoConfig { swarm_size: 20, iterations: 30, ..PsoConfig::default() });
//! let mapping = pso.partition(&problem)?;
//! // optimal: {0,1} and {2,3} — exactly one cut synapse, 10 spikes
//! assert_eq!(problem.cut_spikes(mapping.assignment()), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod coopt;
pub mod decode;
mod error;
pub mod eval;
pub mod explore;
pub mod graph;
pub mod multilevel;
pub mod noc_sweep;
pub mod partition;
pub mod pipeline;
pub mod place;
pub mod pool;
pub mod pso;
pub mod refine;
pub mod remap;

pub use error::CoreError;
pub use graph::SpikeGraph;
pub use partition::{PartitionProblem, Partitioner};
pub use pipeline::{run_pipeline, PipelineConfig, Report};
