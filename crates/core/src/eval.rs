//! Incremental fitness engine shared by every partitioning optimizer.
//!
//! The paper's experiments run PSO with a swarm of 1000 for 100
//! iterations (§III, Fig. 5–7); evaluating Eq. 8 from scratch for every
//! particle at every iteration costs O(E) per evaluation and dominates
//! paper-scale runs. This module maintains **per-candidate cached state**
//! and updates it in O(deg) per changed neuron, falling back to a full
//! recompute when churn makes the incremental path more expensive than a
//! fresh scan.
//!
//! ## Cached state per candidate
//!
//! * `CutSpikes` (Eq. 8): the running cut-spike total. A single-neuron
//!   migration is re-costed from the neuron's in/out CSR rows alone.
//! * `CutPackets` (multicast-aware): the running packet total plus a
//!   per-source tally `cnt[p][k]` = number of `p`'s targets on crossbar
//!   `k` — the same bookkeeping the greedy refiner used internally, now
//!   shared by every optimizer.
//! * `CutHops` (hop-aware): the same tallies as `CutPackets`, with every
//!   remote crossbar priced by the interconnect hop distance from the
//!   source's home crossbar (the problem must carry a
//!   [`crate::partition::PartitionProblem::with_hops`] table). Move
//!   deltas reprice the migrating neuron's distinct-target row in
//!   O(deg + C) and each incoming source in O(1).
//!
//! ## Invariants
//!
//! * After any sequence of [`EvalEngine::apply_move`] /
//!   [`EvalEngine::sync`] calls, `state.cost()` equals the full
//!   recomputation on the current assignment (property-tested in
//!   `tests/eval_properties.rs` across random move sequences, churn
//!   fractions, and both fitness kinds).
//! * [`EvalEngine::move_delta`] is pure: it never mutates state and is
//!   exact for the *current* assignment (deltas of stacked hypothetical
//!   moves must be applied one at a time).
//! * The fallback threshold ([`EvalEngine::with_churn_threshold`]) is a
//!   pure performance knob: both paths produce identical costs, so
//!   results never depend on it.
//!
//! ## Determinism contract
//!
//! The engine is RNG-free and allocation-stable: identical call sequences
//! produce identical states bit for bit, on any machine and any thread
//! count. Optimizers keep their determinism guarantees when they move
//! per-candidate state into worker threads, as long as each candidate is
//! stepped by exactly one worker per round (see `neuromap_core::pool`).
//!
//! ## Batched envelope (large architectures)
//!
//! The whole-swarm evaluator ([`SwarmEval`]) tiles candidates into
//! neuron-major blocks and picks its kernel by crossbar count — a pure
//! function of the problem, exposed as [`SwarmEval::kernel`] /
//! [`SwarmKernel`]:
//!
//! * **Byte tiles** up to [`TILE_MAX_CROSSBARS`] (256) crossbars: one
//!   byte per assignment, `CutPackets`/`CutHops` remote sets as strided
//!   multi-word bitmasks (`⌈C/64⌉` `u64`s per lane). On the
//!   256-crossbar `synth_16x16grid` scenario (1740 neurons, 41.8 k
//!   synapses; `BENCH_eval.json`) this scores a 64-lane swarm ~5.5×
//!   faster than the per-candidate scalar scan.
//! * **u16 word tiles** up to [`TILE16_MAX_CROSSBARS`] (1024) crossbars
//!   — the multi-chip regime of `noc::topology::HierTopology`: two
//!   bytes per assignment, a fixed 16-word mask stride, identical
//!   integer arithmetic. CI gates the `hier/*` batched-over-scalar
//!   ratio ≥ 2× on the 1024-crossbar `synth_4chip16x16` scenario.
//! * **Scalar** beyond 1024 crossbars: the exact per-candidate
//!   reference every tiled kernel is verified against.
//!
//! The active kernel is surfaced in `perf_probe` output and the
//! pipeline `Report`, and the benches assert which kernel actually ran,
//! so a fallback to scalar is a visible, measured boundary rather than
//! a silent perf cliff.

use crate::partition::{FitnessKind, PartitionProblem};

/// Default churn fraction above which [`EvalEngine::sync`] abandons the
/// per-move path and recomputes from scratch. Move application touches
/// the changed neuron's full in+out neighborhood (≈ `2·E/N` edges on
/// average), so the break-even sits near 50% churn; 35% leaves margin
/// for the scattered memory access of the incremental path.
pub const DEFAULT_CHURN_THRESHOLD: f32 = 0.35;

/// Per-candidate cached fitness state. Create with [`EvalEngine::init`],
/// keep it alongside the candidate's assignment, and let the engine
/// update both together.
/// The `Default` value is an *empty placeholder* (cost 0, no tallies) —
/// cheap to allocate in bulk, but meaningless until overwritten by
/// [`EvalEngine::init`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostState {
    cost: u64,
    /// `CutPackets` only: `cnt[p * c + k]` = targets of `p` on crossbar
    /// `k`. Empty for `CutSpikes`.
    target_cnt: Vec<u32>,
}

impl CostState {
    /// The cached cost of the candidate's current assignment.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

/// The shared incremental evaluator: immutable problem context plus the
/// pre-grouped edge structure the delta formulas need.
#[derive(Debug, Clone)]
pub struct EvalEngine<'g> {
    problem: PartitionProblem<'g>,
    kind: FitnessKind,
    churn_threshold: f32,
    /// `CutPackets` only — CSR of distinct presynaptic sources with edge
    /// multiplicities: neuron `i`'s sources are
    /// `grouped_sources[grouped_offsets[i]..grouped_offsets[i + 1]]`.
    grouped_sources: Vec<(u32, u32)>,
    grouped_offsets: Vec<u32>,
    /// `CutPackets` only — number of self-loop synapses per neuron.
    self_mult: Vec<u32>,
}

impl<'g> EvalEngine<'g> {
    /// Builds an engine for `problem` under `kind`.
    ///
    /// `CutSpikes` construction is O(1); `CutPackets` pre-groups the
    /// reverse CSR once (O(E log deg)) so every later delta is
    /// allocation-free.
    pub fn new(problem: PartitionProblem<'g>, kind: FitnessKind) -> Self {
        let (grouped_sources, grouped_offsets, self_mult) = match kind {
            FitnessKind::CutSpikes => (Vec::new(), Vec::new(), Vec::new()),
            FitnessKind::CutPackets | FitnessKind::CutHops => group_sources(&problem),
        };
        Self {
            problem,
            kind,
            churn_threshold: DEFAULT_CHURN_THRESHOLD,
            grouped_sources,
            grouped_offsets,
            self_mult,
        }
    }

    /// Overrides the churn fraction above which [`EvalEngine::sync`]
    /// recomputes from scratch (performance knob only; results are
    /// identical either way).
    #[must_use]
    pub fn with_churn_threshold(mut self, threshold: f32) -> Self {
        self.churn_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// The problem this engine evaluates against.
    pub fn problem(&self) -> &PartitionProblem<'g> {
        &self.problem
    }

    /// The objective this engine maintains.
    pub fn kind(&self) -> FitnessKind {
        self.kind
    }

    /// Full evaluation of `assignment`, bypassing all caches (the
    /// reference the incremental path is verified against).
    pub fn full_cost(&self, assignment: &[u32]) -> u64 {
        self.problem.cost(self.kind, assignment)
    }

    /// Builds cached state for `assignment` by full evaluation.
    pub fn init(&self, assignment: &[u32]) -> CostState {
        let mut state = CostState {
            cost: 0,
            target_cnt: Vec::new(),
        };
        self.rebuild(&mut state, assignment);
        state
    }

    /// Whether this objective maintains the per-source target tallies.
    fn tracks_targets(&self) -> bool {
        matches!(self.kind, FitnessKind::CutPackets | FitnessKind::CutHops)
    }

    /// Recomputes `state` from scratch for `assignment`.
    fn rebuild(&self, state: &mut CostState, assignment: &[u32]) {
        state.cost = self.full_cost(assignment);
        if self.tracks_targets() {
            let g = self.problem.graph();
            let n = g.num_neurons() as usize;
            let c = self.problem.num_crossbars();
            state.target_cnt.clear();
            state.target_cnt.resize(n * c, 0);
            for p in 0..n as u32 {
                for &j in g.targets(p) {
                    state.target_cnt[p as usize * c + assignment[j as usize] as usize] += 1;
                }
            }
        }
    }

    /// Exact cost change of migrating neuron `i` to crossbar `to`, in
    /// O(deg(i)) (`CutHops` additionally rescans the migrating neuron's
    /// C-entry target row: O(deg(i) + C)), without mutating anything.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `to` is out of range for the problem, or (debug
    /// builds) if `state` was built for a different-size problem.
    pub fn move_delta(&self, state: &CostState, assignment: &[u32], i: usize, to: u32) -> i64 {
        match self.kind {
            FitnessKind::CutSpikes => self.problem.move_delta_spikes(assignment, i, to),
            FitnessKind::CutPackets => self.packet_delta(state, assignment, i, to),
            FitnessKind::CutHops => self.hop_delta(state, assignment, i, to),
        }
    }

    /// Exchanges the crossbars of neurons `i` and `j`, updating `state`
    /// and `assignment`; returns the exact combined cost change. A swap
    /// preserves per-crossbar occupancy, which is what capacity-tight
    /// placement and annealing loops need. No-op (delta 0) when both
    /// neurons already share a crossbar.
    pub fn apply_swap(
        &self,
        state: &mut CostState,
        assignment: &mut [u32],
        i: usize,
        j: usize,
    ) -> i64 {
        let (ci, cj) = (assignment[i], assignment[j]);
        if ci == cj {
            return 0;
        }
        let d1 = self.apply_move(state, assignment, i, cj);
        let d2 = self.apply_move(state, assignment, j, ci);
        d1 + d2
    }

    /// Applies the migration of neuron `i` to crossbar `to`, updating
    /// `state` and `assignment[i]`; returns the (exact) cost change.
    ///
    /// Capacity is the *caller's* invariant: the engine prices moves, the
    /// optimizer decides which are feasible.
    pub fn apply_move(
        &self,
        state: &mut CostState,
        assignment: &mut [u32],
        i: usize,
        to: u32,
    ) -> i64 {
        let from = assignment[i];
        if from == to {
            return 0;
        }
        let delta = self.move_delta(state, assignment, i, to);
        self.commit_move(state, assignment, i, to, delta);
        delta
    }

    /// Like [`EvalEngine::apply_move`], but reuses a `delta` the caller
    /// already obtained from [`EvalEngine::move_delta`] on the *current*
    /// state — optimizers that price a move before accepting it skip the
    /// second O(deg) pricing pass. Debug builds verify the delta.
    ///
    /// A stale or foreign `delta` silently corrupts the cached cost in
    /// release builds; when in doubt use [`EvalEngine::apply_move`].
    pub fn apply_priced_move(
        &self,
        state: &mut CostState,
        assignment: &mut [u32],
        i: usize,
        to: u32,
        delta: i64,
    ) {
        if assignment[i] == to {
            debug_assert_eq!(delta, 0, "no-op move must be priced at 0");
            return;
        }
        debug_assert_eq!(
            delta,
            self.move_delta(state, assignment, i, to),
            "caller-supplied delta must match the current state"
        );
        self.commit_move(state, assignment, i, to, delta);
    }

    /// Updates tallies, assignment, and cached cost for an accepted move
    /// whose `delta` is already known. `assignment[i] != to` required.
    fn commit_move(
        &self,
        state: &mut CostState,
        assignment: &mut [u32],
        i: usize,
        to: u32,
        delta: i64,
    ) {
        let from = assignment[i];
        if self.tracks_targets() {
            let c = self.problem.num_crossbars();
            let lo = self.grouped_offsets[i] as usize;
            let hi = self.grouped_offsets[i + 1] as usize;
            for &(p, m) in &self.grouped_sources[lo..hi] {
                let base = p as usize * c;
                state.target_cnt[base + from as usize] -= m;
                state.target_cnt[base + to as usize] += m;
            }
        }
        assignment[i] = to;
        state.cost = state
            .cost
            .checked_add_signed(delta)
            .expect("cost stays non-negative");
    }

    /// Brings (`state`, `current`) to the new position `target`: applies
    /// per-neuron moves when few neurons changed, or recomputes from
    /// scratch when churn exceeds the threshold. Returns the new cost.
    ///
    /// `current` is rewritten to equal `target`.
    ///
    /// # Panics
    ///
    /// Panics if `current.len() != target.len()`.
    pub fn sync(&self, state: &mut CostState, current: &mut [u32], target: &[u32]) -> u64 {
        assert_eq!(current.len(), target.len(), "assignment lengths must match");
        let n = current.len();
        let changed = current.iter().zip(target).filter(|(a, b)| a != b).count();
        if changed == 0 {
            return state.cost;
        }
        #[cfg(feature = "eval-stats")]
        {
            use std::sync::atomic::{AtomicU64, Ordering};
            pub static SYNCS: AtomicU64 = AtomicU64::new(0);
            pub static CHANGED: AtomicU64 = AtomicU64::new(0);
            SYNCS.fetch_add(1, Ordering::Relaxed);
            CHANGED.fetch_add(changed as u64, Ordering::Relaxed);
            let syncs = SYNCS.load(Ordering::Relaxed);
            if syncs % 500 == 0 {
                eprintln!(
                    "eval-stats: {} syncs, avg churn {:.1}%",
                    syncs,
                    100.0 * CHANGED.load(Ordering::Relaxed) as f64 / (syncs * n as u64) as f64
                );
            }
        }
        if (changed as f32) > self.churn_threshold * n as f32 {
            current.copy_from_slice(target);
            self.rebuild(state, current);
            return state.cost;
        }
        for i in 0..n {
            if current[i] != target[i] {
                self.apply_move(state, current, i, target[i]);
            }
        }
        state.cost
    }

    /// `CutPackets` delta: how the multicast packet total changes when
    /// neuron `i` migrates from its current crossbar to `to`.
    fn packet_delta(&self, state: &CostState, assignment: &[u32], i: usize, to: u32) -> i64 {
        let g = self.problem.graph();
        let c = self.problem.num_crossbars();
        let from = assignment[i];
        if from == to {
            return 0;
        }
        let mut d = 0i64;

        // i's own outgoing packets: the home crossbar stops masking
        // targets at `from` and starts masking targets at `to`
        let ci = g.count(i as u32) as i64;
        if ci > 0 {
            let row = &state.target_cnt[i * c..(i + 1) * c];
            let self_m = self.self_mult[i];
            if self_m > 0 {
                // self-loop targets move with the neuron: compare the
                // remote-crossbar count before and after, with the row
                // adjusted for the migrated self-loops
                let before = row
                    .iter()
                    .enumerate()
                    .filter(|&(k, &v)| v > 0 && k as u32 != from)
                    .count() as i64;
                let after = row
                    .iter()
                    .enumerate()
                    .filter(|&(k, &v)| {
                        let v = if k as u32 == from {
                            v - self_m
                        } else if k as u32 == to {
                            v + self_m
                        } else {
                            v
                        };
                        v > 0 && k as u32 != to
                    })
                    .count() as i64;
                d += ci * (after - before);
            } else {
                let before = (row[from as usize] > 0) as i64;
                let after = (row[to as usize] > 0) as i64;
                d += ci * (before - after);
            }
        }

        // incoming: each distinct source p sees target i move from→to
        let lo = self.grouped_offsets[i] as usize;
        let hi = self.grouped_offsets[i + 1] as usize;
        for &(p, m) in &self.grouped_sources[lo..hi] {
            let p = p as usize;
            if p == i {
                continue; // self-loops handled with the outgoing side
            }
            let cp = g.count(p as u32) as i64;
            if cp == 0 {
                continue;
            }
            let home_p = assignment[p];
            let row = &state.target_cnt[p * c..(p + 1) * c];
            // `from` drops out of p's remote set if i carried its last edges
            if row[from as usize] == m && from != home_p {
                d -= cp;
            }
            // `to` joins p's remote set if previously untargeted
            if row[to as usize] == 0 && to != home_p {
                d += cp;
            }
        }
        d
    }

    /// `CutHops` delta: like [`EvalEngine::packet_delta`], but every
    /// remote-crossbar membership change is priced by the hop distance
    /// instead of 1, and moving neuron `i` additionally *reprices its own
    /// whole distinct-target set* (the home crossbar changes, so every
    /// target distance changes — an O(C) row rescan).
    ///
    /// # Panics
    ///
    /// Panics if the problem carries no hop table.
    fn hop_delta(&self, state: &CostState, assignment: &[u32], i: usize, to: u32) -> i64 {
        let g = self.problem.graph();
        let c = self.problem.num_crossbars();
        let hops = self
            .problem
            .hops()
            .expect("CutHops requires a hop table; attach one with `with_hops`");
        let from = assignment[i];
        if from == to {
            return 0;
        }
        let mut d = 0i64;

        // i's own outgoing traffic: reprice the distinct-target set from
        // w(from, ·) to w(to, ·); self-loop targets migrate with i.
        // w(a, a) = 0, so the home crossbar needs no special-casing.
        let ci = g.count(i as u32) as i64;
        if ci > 0 {
            let row = &state.target_cnt[i * c..(i + 1) * c];
            let self_m = self.self_mult[i];
            let mut before = 0i64;
            let mut after = 0i64;
            for (k, &v) in row.iter().enumerate() {
                let k = k as u32;
                let v_after = if self_m > 0 {
                    if k == from {
                        v - self_m
                    } else if k == to {
                        v + self_m
                    } else {
                        v
                    }
                } else {
                    v
                };
                if v > 0 {
                    before += i64::from(hops.hops(from, k));
                }
                if v_after > 0 {
                    after += i64::from(hops.hops(to, k));
                }
            }
            d += ci * (after - before);
        }

        // incoming: each distinct source p sees target i move from→to;
        // membership thresholds are the same as the packet delta, weights
        // are the hop distances from p's home (zero when p lives there)
        let lo = self.grouped_offsets[i] as usize;
        let hi = self.grouped_offsets[i + 1] as usize;
        for &(p, m) in &self.grouped_sources[lo..hi] {
            let p = p as usize;
            if p == i {
                continue; // self-loops handled with the outgoing side
            }
            let cp = g.count(p as u32) as i64;
            if cp == 0 {
                continue;
            }
            let home_p = assignment[p];
            let row = &state.target_cnt[p * c..(p + 1) * c];
            // `from` drops out of p's remote set if i carried its last edges
            if row[from as usize] == m {
                d -= cp * i64::from(hops.hops(home_p, from));
            }
            // `to` joins p's remote set if previously untargeted
            if row[to as usize] == 0 {
                d += cp * i64::from(hops.hops(home_p, to));
            }
        }
        d
    }
}

/// Number of candidates evaluated together per tile by [`SwarmEval`]:
/// small enough that a tile (`N × LANES` bytes) stays cache-resident,
/// wide enough to fill SIMD lanes.
const LANES: usize = 64;

/// Crossbar-count ceiling of the byte-tile envelope: assignments are
/// stored one byte per neuron per lane, so crossbar ids must fit `u8`.
pub const TILE_MAX_CROSSBARS: usize = 256;

/// Crossbar-count ceiling of the u16 word-tile envelope: assignments are
/// stored two bytes per neuron per lane, lifting the batched evaluator
/// to the multi-chip regime (e.g. 4 chips of 16×16 crossbars). Beyond
/// this the evaluator runs the exact scalar reference per candidate.
pub const TILE16_MAX_CROSSBARS: usize = 1024;

/// Mask words per lane at the byte-tile ceiling (the fixed stride of the
/// wide `CutPackets` kernel).
const MASK_WORDS_MAX: usize = TILE_MAX_CROSSBARS / 64;

/// Mask words per lane at the word-tile ceiling (the fixed stride of the
/// u16 kernels).
const MASK16_WORDS_MAX: usize = TILE16_MAX_CROSSBARS / 64;

/// Which evaluation kernel [`SwarmEval::eval_swarm`] runs for a given
/// problem — a pure function of the crossbar count
/// ([`SwarmKernel::for_crossbars`]), surfaced in `perf_probe` and the
/// pipeline `Report` and asserted by the benches so the scalar fallback
/// is never a silent perf cliff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwarmKernel {
    /// Neuron-major byte tile (crossbar ids fit `u8`):
    /// ≤ [`TILE_MAX_CROSSBARS`] crossbars.
    ByteTile,
    /// Neuron-major u16 tile with a fixed 16-word mask stride:
    /// ≤ [`TILE16_MAX_CROSSBARS`] crossbars.
    WordTile,
    /// Exact per-candidate scalar scan — the reference path, and the
    /// fallback beyond the word-tile envelope.
    Scalar,
}

impl SwarmKernel {
    /// The kernel the batched evaluator selects for `num_crossbars`.
    pub fn for_crossbars(num_crossbars: usize) -> Self {
        if num_crossbars <= TILE_MAX_CROSSBARS {
            SwarmKernel::ByteTile
        } else if num_crossbars <= TILE16_MAX_CROSSBARS {
            SwarmKernel::WordTile
        } else {
            SwarmKernel::Scalar
        }
    }

    /// Stable lowercase name (`"byte-tile"`, `"word-tile"`, `"scalar"`)
    /// for reports and probe output.
    pub fn name(self) -> &'static str {
        match self {
            SwarmKernel::ByteTile => "byte-tile",
            SwarmKernel::WordTile => "word-tile",
            SwarmKernel::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for SwarmKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Batched whole-swarm evaluation: the complement of the per-candidate
/// incremental path for optimizers whose candidates churn too much to
/// diff (binary PSO re-samples every neuron's crossbar each iteration —
/// measured churn is 70%+, far beyond the incremental break-even).
///
/// Instead of evaluating candidates one by one (a random `assignment[j]`
/// gather per edge), the swarm is transposed into **neuron-major tiles**
/// of [`LANES`] candidates (`tile[i * LANES + lane]` = crossbar of neuron
/// `i` in candidate `lane`, one byte each): one pass over the CSR then
/// compares contiguous 64-byte rows, which the compiler vectorizes, and
/// every row is reused `deg(i)` times from cache. Costs are exact — the
/// same integer arithmetic as [`PartitionProblem::cut_spikes`] /
/// [`PartitionProblem::cut_packets`] — just evaluated lane-parallel
/// (verified per batch by a debug assertion and by unit tests).
///
/// Requirements: `num_crossbars ≤ 256` ([`TILE_MAX_CROSSBARS`], one byte
/// per assignment) for the byte-tile path. `CutPackets` keeps each
/// lane's remote-crossbar set as a **multi-word bitmask** — a strided
/// run of `mask_words = ⌈num_crossbars / 64⌉` `u64`s per lane (one word
/// when `num_crossbars ≤ 64`, the historical fast path; up to four words
/// at the 256-crossbar ceiling). Past the byte tile, **u16 word tiles**
/// (two bytes per assignment, fixed 16-word mask stride) carry the
/// batched path to [`TILE16_MAX_CROSSBARS`] (1024) crossbars — the
/// multi-chip regime — so SpiNeMap-scale architectures stay tiled
/// instead of silently degrading to a per-candidate scan. Beyond the
/// word-tile envelope [`SwarmEval::eval_swarm`] evaluates per candidate;
/// [`SwarmEval::kernel`] reports which path runs.
#[derive(Debug, Clone)]
pub struct SwarmEval<'g> {
    problem: PartitionProblem<'g>,
    kind: FitnessKind,
    /// Narrow (u16) shadow of the hop table for the tiled `CutHops`
    /// kernels — same values, half the gather footprint of the u32
    /// `DistanceLut` the reduction walks per set mask bit. Empty when
    /// the objective is not `CutHops`, the problem is past the tiled
    /// envelope, or any distance overflows u16 (the kernels then read
    /// the u32 table directly).
    hops16: Vec<u16>,
}

/// Reusable buffers for [`SwarmEval::eval_swarm`].
#[derive(Debug, Clone, Default)]
pub struct SwarmScratch {
    /// Neuron-major tile: `n × LANES` bytes.
    tile: Vec<u8>,
    /// Neuron-major u16 tile for the word-tile kernels (crossbar ids
    /// past 255): `n × LANES` entries.
    tile16: Vec<u16>,
    /// Per-lane remote-edge counters for the current neuron.
    remote: Vec<u32>,
    /// Per-lane byte-wide partial counters (flushed every ≤255 edges so
    /// the inner loop stays pure byte SIMD).
    remote8: Vec<u8>,
    /// Per-lane remote-crossbar bitmasks (`CutPackets`): one `u64` per
    /// lane on the ≤ 64-crossbar fast path, otherwise [`MASK_WORDS_MAX`]
    /// (byte tile) or [`MASK16_WORDS_MAX`] (word tile) consecutive
    /// `u64`s per lane (lane-major, fixed stride regardless of the
    /// actual word count so every tile entry indexes in bounds).
    masks: Vec<u64>,
}

impl<'g> SwarmEval<'g> {
    /// Creates a batched evaluator.
    ///
    /// # Panics
    ///
    /// Panics for [`FitnessKind::CutHops`] when the problem carries no
    /// hop table ([`PartitionProblem::with_hops`]).
    pub fn new(problem: PartitionProblem<'g>, kind: FitnessKind) -> Self {
        assert!(
            kind != FitnessKind::CutHops || problem.hops().is_some(),
            "CutHops requires a hop table; attach one with `with_hops`"
        );
        let mut hops16 = Vec::new();
        if kind == FitnessKind::CutHops
            && SwarmKernel::for_crossbars(problem.num_crossbars()) != SwarmKernel::Scalar
        {
            let lut = problem.hops().expect("asserted above");
            let c = problem.num_crossbars() as u32;
            hops16.reserve(c as usize * c as usize);
            'build: for k1 in 0..c {
                for k2 in 0..c {
                    let Ok(h) = u16::try_from(lut.hops(k1, k2)) else {
                        hops16 = Vec::new();
                        break 'build;
                    };
                    hops16.push(h);
                }
            }
        }
        Self {
            problem,
            kind,
            hops16,
        }
    }

    /// Whether a vectorizable tile path applies to this problem: both
    /// objectives are tiled up to [`TILE16_MAX_CROSSBARS`] crossbars
    /// (byte tiles to 256, u16 word tiles beyond).
    pub fn batched(&self) -> bool {
        self.kernel() != SwarmKernel::Scalar
    }

    /// The kernel [`SwarmEval::eval_swarm`] runs for this problem — a
    /// pure function of the crossbar count.
    pub fn kernel(&self) -> SwarmKernel {
        SwarmKernel::for_crossbars(self.problem.num_crossbars())
    }

    /// `u64` words per lane in the `CutPackets` remote-crossbar bitmask
    /// (1 up to 64 crossbars, 4 at the 256-crossbar tile ceiling).
    pub fn mask_words(&self) -> usize {
        self.problem.num_crossbars().div_ceil(64)
    }

    /// Evaluates `lanes` candidates stored back to back in candidate-major
    /// order (`positions[lane * n ..][..n]`), writing each cost to
    /// `out[lane]`. Exact for every problem; tiled and vectorized when
    /// [`SwarmEval::batched`] holds.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != lanes * n` or `out.len() != lanes`.
    pub fn eval_swarm(
        &self,
        positions: &[u32],
        lanes: usize,
        scratch: &mut SwarmScratch,
        out: &mut [u64],
    ) {
        let n = self.problem.graph().num_neurons() as usize;
        assert_eq!(positions.len(), lanes * n, "candidate buffer size");
        assert_eq!(out.len(), lanes, "output size");
        match self.kernel() {
            SwarmKernel::Scalar => {
                for lane in 0..lanes {
                    out[lane] = self
                        .problem
                        .cost(self.kind, &positions[lane * n..(lane + 1) * n]);
                }
            }
            SwarmKernel::ByteTile => self.eval_swarm_bytes(positions, lanes, scratch, out),
            SwarmKernel::WordTile => self.eval_swarm_words(positions, lanes, scratch, out),
        }
    }

    /// The byte-tile driver: transposes 64-candidate blocks into the u8
    /// tile and dispatches the byte kernels.
    fn eval_swarm_bytes(
        &self,
        positions: &[u32],
        lanes: usize,
        scratch: &mut SwarmScratch,
        out: &mut [u64],
    ) {
        let n = self.problem.graph().num_neurons() as usize;
        scratch.tile.resize(n * LANES, 0);
        scratch.remote.resize(LANES, 0);
        scratch.remote8.resize(LANES, 0);
        // single-word fast path uses one u64 per lane; the wide kernel
        // always uses the fixed MASK_WORDS_MAX stride
        let mask_stride = if self.mask_words() == 1 {
            1
        } else {
            MASK_WORDS_MAX
        };
        scratch.masks.resize(LANES * mask_stride, 0);
        let mut lane0 = 0;
        while lane0 < lanes {
            let width = LANES.min(lanes - lane0);
            // transpose this candidate block into the neuron-major tile,
            // in 64-neuron blocks so writes stay inside an L1-resident
            // 64×64 window instead of striding through the whole tile
            for iblock in (0..n).step_by(LANES) {
                let iend = (iblock + LANES).min(n);
                for lane in 0..width {
                    let row = &positions[(lane0 + lane) * n..(lane0 + lane + 1) * n];
                    for (i, &k) in row[iblock..iend].iter().enumerate() {
                        scratch.tile[(iblock + i) * LANES + lane] = k as u8;
                    }
                }
            }
            match self.kind {
                FitnessKind::CutSpikes => {
                    self.tile_cut_spikes(width, scratch, &mut out[lane0..lane0 + width]);
                }
                FitnessKind::CutPackets => {
                    let out = &mut out[lane0..lane0 + width];
                    // the single-word kernel is the historical ≤64-crossbar
                    // fast path; the strided kernel lifts the envelope to
                    // the byte-tile ceiling of 256 crossbars
                    if self.mask_words() == 1 {
                        self.tile_cut_packets(width, scratch, out);
                    } else {
                        self.tile_cut_packets_wide(width, scratch, out);
                    }
                }
                FitnessKind::CutHops => {
                    // same mask accumulation as the packet kernels — the
                    // per-edge inner loop cannot carry weights, so the
                    // hop pricing happens in the per-lane reduction over
                    // the surviving mask bits
                    let out = &mut out[lane0..lane0 + width];
                    if self.mask_words() == 1 {
                        self.tile_cut_hops(width, scratch, out);
                    } else {
                        self.tile_cut_hops_wide(width, scratch, out);
                    }
                }
            }
            debug_assert_eq!(
                out[lane0],
                self.problem
                    .cost(self.kind, &positions[lane0 * n..(lane0 + 1) * n]),
                "batched cost must equal the scalar evaluation"
            );
            lane0 += width;
        }
    }

    /// The word-tile driver for 256 < crossbars ≤ 1024: the byte driver
    /// with a u16 tile (crossbar ids past 255 no longer fit a byte) and
    /// the fixed [`MASK16_WORDS_MAX`] mask stride. Same transpose
    /// blocking, same per-block scalar verification.
    fn eval_swarm_words(
        &self,
        positions: &[u32],
        lanes: usize,
        scratch: &mut SwarmScratch,
        out: &mut [u64],
    ) {
        let n = self.problem.graph().num_neurons() as usize;
        scratch.tile16.resize(n * LANES, 0);
        scratch.remote.resize(LANES, 0);
        scratch.remote8.resize(LANES, 0);
        scratch.masks.resize(LANES * MASK16_WORDS_MAX, 0);
        let mut lane0 = 0;
        while lane0 < lanes {
            let width = LANES.min(lanes - lane0);
            for iblock in (0..n).step_by(LANES) {
                let iend = (iblock + LANES).min(n);
                for lane in 0..width {
                    let row = &positions[(lane0 + lane) * n..(lane0 + lane + 1) * n];
                    for (i, &k) in row[iblock..iend].iter().enumerate() {
                        scratch.tile16[(iblock + i) * LANES + lane] = k as u16;
                    }
                }
            }
            let block = &mut out[lane0..lane0 + width];
            match self.kind {
                FitnessKind::CutSpikes => self.tile16_cut_spikes(width, scratch, block),
                FitnessKind::CutPackets => self.tile16_cut_packets(width, scratch, block),
                FitnessKind::CutHops => self.tile16_cut_hops(width, scratch, block),
            }
            debug_assert_eq!(
                out[lane0],
                self.problem
                    .cost(self.kind, &positions[lane0 * n..(lane0 + 1) * n]),
                "batched cost must equal the scalar evaluation"
            );
            lane0 += width;
        }
    }

    /// Eq. 8 over one tile: per neuron, count cut out-edges per lane and
    /// weight by the neuron's spike count.
    fn tile_cut_spikes(&self, width: usize, scratch: &mut SwarmScratch, out: &mut [u64]) {
        let g = self.problem.graph();
        let n = g.num_neurons() as usize;
        let tile = &scratch.tile;
        let remote = &mut scratch.remote;
        let remote8 = &mut scratch.remote8;
        out.fill(0);
        for i in 0..n {
            let ci = g.count(i as u32) as u64;
            if ci == 0 {
                continue;
            }
            let targets = g.targets(i as u32);
            if targets.is_empty() {
                continue;
            }
            remote[..width].fill(0);
            let home: &[u8; LANES] = tile[i * LANES..i * LANES + LANES]
                .try_into()
                .expect("tile row is LANES wide");
            // accumulate in byte counters, flushed every ≤255 edges (so a
            // counter cannot overflow): the inner loop is a pure byte
            // compare + add over the full fixed LANES width — lanes past
            // `width` hold stale bytes but are never read back
            for tchunk in targets.chunks(255) {
                remote8.fill(0);
                let racc: &mut [u8; LANES] = (&mut remote8[..LANES])
                    .try_into()
                    .expect("scratch is LANES wide");
                for &j in tchunk {
                    let tgt: &[u8; LANES] = tile[j as usize * LANES..j as usize * LANES + LANES]
                        .try_into()
                        .expect("tile row is LANES wide");
                    for lane in 0..LANES {
                        racc[lane] += u8::from(home[lane] != tgt[lane]);
                    }
                }
                for lane in 0..width {
                    remote[lane] += u32::from(racc[lane]);
                }
            }
            for lane in 0..width {
                out[lane] += ci * u64::from(remote[lane]);
            }
        }
    }

    /// Multicast packets over one tile: per neuron and lane, the set of
    /// remote target crossbars as a bitmask, then `count × popcount`.
    fn tile_cut_packets(&self, width: usize, scratch: &mut SwarmScratch, out: &mut [u64]) {
        let g = self.problem.graph();
        let n = g.num_neurons() as usize;
        let tile = &scratch.tile;
        let masks = &mut scratch.masks;
        out.fill(0);
        for i in 0..n {
            let ci = g.count(i as u32) as u64;
            if ci == 0 {
                continue;
            }
            let targets = g.targets(i as u32);
            if targets.is_empty() {
                continue;
            }
            masks[..width].fill(0);
            let home = &tile[i * LANES..i * LANES + LANES];
            for &j in targets {
                let tgt = &tile[j as usize * LANES..j as usize * LANES + LANES];
                for lane in 0..width {
                    masks[lane] |= 1u64 << tgt[lane];
                }
            }
            for lane in 0..width {
                let distinct = (masks[lane] & !(1u64 << home[lane])).count_ones();
                out[lane] += ci * u64::from(distinct);
            }
        }
    }

    /// Multi-word `CutPackets` kernel for 64 < crossbars ≤ 256: each
    /// lane's remote-crossbar set is [`MASK_WORDS`] consecutive `u64`s in
    /// the strided scratch (`masks[lane * MASK_WORDS + (k >> 6)]`, bit
    /// `k & 63`). The stride is fixed at the byte-tile ceiling rather
    /// than `mask_words()` so every index is provably in range (a `u8`
    /// shifted right by 6 is `< 4`): the per-edge update compiles
    /// branch- and bounds-check-free with a constant [`LANES`]-wide trip
    /// count (stale lanes past `width` accumulate garbage that is never
    /// read back, exactly like the spike kernel's byte counters). Same
    /// integer arithmetic as the single-word kernel.
    fn tile_cut_packets_wide(&self, width: usize, scratch: &mut SwarmScratch, out: &mut [u64]) {
        const MASK_WORDS: usize = MASK_WORDS_MAX;
        let g = self.problem.graph();
        let n = g.num_neurons() as usize;
        let tile = &scratch.tile;
        let masks: &mut [u64; LANES * MASK_WORDS] = (&mut scratch.masks[..LANES * MASK_WORDS])
            .try_into()
            .expect("eval_swarm sizes the mask scratch to the fixed wide stride");
        out.fill(0);
        for i in 0..n {
            let ci = g.count(i as u32) as u64;
            if ci == 0 {
                continue;
            }
            let targets = g.targets(i as u32);
            if targets.is_empty() {
                continue;
            }
            masks.fill(0);
            let home = &tile[i * LANES..i * LANES + LANES];
            for &j in targets {
                let tgt: &[u8; LANES] = tile[j as usize * LANES..j as usize * LANES + LANES]
                    .try_into()
                    .expect("tile row is LANES wide");
                for lane in 0..LANES {
                    let k = tgt[lane] as usize;
                    masks[lane * MASK_WORDS + (k >> 6)] |= 1u64 << (k & 63);
                }
            }
            for lane in 0..width {
                let h = home[lane] as usize;
                let words = &masks[lane * MASK_WORDS..lane * MASK_WORDS + MASK_WORDS];
                let mut distinct = 0u32;
                for (w, &word) in words.iter().enumerate() {
                    let drop_home = if w == h >> 6 { 1u64 << (h & 63) } else { 0 };
                    distinct += (word & !drop_home).count_ones();
                }
                out[lane] += ci * u64::from(distinct);
            }
        }
    }

    /// Hop-weighted packets over one tile (≤ 64 crossbars): the per-edge
    /// loop is the packet kernel's mask OR — the byte-SIMD inner loop
    /// cannot carry per-destination weights — and the per-lane reduction
    /// walks the surviving mask bits, pricing each distinct crossbar by
    /// its hop distance from the lane's home (`w(home, home) = 0`, so the
    /// home bit needs no masking).
    fn tile_cut_hops(&self, width: usize, scratch: &mut SwarmScratch, out: &mut [u64]) {
        let g = self.problem.graph();
        let n = g.num_neurons() as usize;
        let hops = self.problem.hops().expect("checked in SwarmEval::new");
        let c = self.problem.num_crossbars();
        let tile = &scratch.tile;
        let masks = &mut scratch.masks;
        out.fill(0);
        for i in 0..n {
            let ci = g.count(i as u32) as u64;
            if ci == 0 {
                continue;
            }
            let targets = g.targets(i as u32);
            if targets.is_empty() {
                continue;
            }
            masks[..width].fill(0);
            let home = &tile[i * LANES..i * LANES + LANES];
            for &j in targets {
                let tgt = &tile[j as usize * LANES..j as usize * LANES + LANES];
                for lane in 0..width {
                    masks[lane] |= 1u64 << tgt[lane];
                }
            }
            for lane in 0..width {
                let h = u32::from(home[lane]);
                let mut m = masks[lane];
                let mut weighted = 0u64;
                if let Some(row) = self.hops16_row(h, c) {
                    while m != 0 {
                        let k = m.trailing_zeros() as usize;
                        weighted += u64::from(row[k]);
                        m &= m - 1;
                    }
                } else {
                    while m != 0 {
                        let k = m.trailing_zeros();
                        weighted += u64::from(hops.hops(h, k));
                        m &= m - 1;
                    }
                }
                out[lane] += ci * weighted;
            }
        }
    }

    /// Multi-word hop-weighted kernel for 64 < crossbars ≤ 256: the
    /// strided mask accumulation of [`SwarmEval::tile_cut_packets_wide`]
    /// with the weighted bit-walk reduction of
    /// [`SwarmEval::tile_cut_hops`].
    fn tile_cut_hops_wide(&self, width: usize, scratch: &mut SwarmScratch, out: &mut [u64]) {
        const MASK_WORDS: usize = MASK_WORDS_MAX;
        let g = self.problem.graph();
        let n = g.num_neurons() as usize;
        let hops = self.problem.hops().expect("checked in SwarmEval::new");
        let c = self.problem.num_crossbars();
        let tile = &scratch.tile;
        let masks: &mut [u64; LANES * MASK_WORDS] = (&mut scratch.masks[..LANES * MASK_WORDS])
            .try_into()
            .expect("eval_swarm sizes the mask scratch to the fixed wide stride");
        out.fill(0);
        for i in 0..n {
            let ci = g.count(i as u32) as u64;
            if ci == 0 {
                continue;
            }
            let targets = g.targets(i as u32);
            if targets.is_empty() {
                continue;
            }
            masks.fill(0);
            let home = &tile[i * LANES..i * LANES + LANES];
            for &j in targets {
                let tgt: &[u8; LANES] = tile[j as usize * LANES..j as usize * LANES + LANES]
                    .try_into()
                    .expect("tile row is LANES wide");
                for lane in 0..LANES {
                    let k = tgt[lane] as usize;
                    masks[lane * MASK_WORDS + (k >> 6)] |= 1u64 << (k & 63);
                }
            }
            for lane in 0..width {
                let h = u32::from(home[lane]);
                let words = &masks[lane * MASK_WORDS..lane * MASK_WORDS + MASK_WORDS];
                let mut weighted = 0u64;
                let row = self.hops16_row(h, c);
                for (w, &word) in words.iter().enumerate() {
                    let base = w << 6;
                    let mut m = word;
                    if let Some(row) = row {
                        while m != 0 {
                            let k = base + m.trailing_zeros() as usize;
                            weighted += u64::from(row[k]);
                            m &= m - 1;
                        }
                    } else {
                        while m != 0 {
                            let k = (base + m.trailing_zeros() as usize) as u32;
                            weighted += u64::from(hops.hops(h, k));
                            m &= m - 1;
                        }
                    }
                }
                out[lane] += ci * weighted;
            }
        }
    }

    /// Eq. 8 over one u16 tile — [`SwarmEval::tile_cut_spikes`] with
    /// 16-bit lane compares; the byte partial counters and their
    /// ≤255-edge flush cadence are unchanged.
    fn tile16_cut_spikes(&self, width: usize, scratch: &mut SwarmScratch, out: &mut [u64]) {
        let g = self.problem.graph();
        let n = g.num_neurons() as usize;
        let tile = &scratch.tile16;
        let remote = &mut scratch.remote;
        let remote8 = &mut scratch.remote8;
        out.fill(0);
        for i in 0..n {
            let ci = g.count(i as u32) as u64;
            if ci == 0 {
                continue;
            }
            let targets = g.targets(i as u32);
            if targets.is_empty() {
                continue;
            }
            remote[..width].fill(0);
            let home: &[u16; LANES] = tile[i * LANES..i * LANES + LANES]
                .try_into()
                .expect("tile row is LANES wide");
            for tchunk in targets.chunks(255) {
                remote8.fill(0);
                let racc: &mut [u8; LANES] = (&mut remote8[..LANES])
                    .try_into()
                    .expect("scratch is LANES wide");
                for &j in tchunk {
                    let tgt: &[u16; LANES] = tile[j as usize * LANES..j as usize * LANES + LANES]
                        .try_into()
                        .expect("tile row is LANES wide");
                    for lane in 0..LANES {
                        racc[lane] += u8::from(home[lane] != tgt[lane]);
                    }
                }
                for lane in 0..width {
                    remote[lane] += u32::from(racc[lane]);
                }
            }
            for lane in 0..width {
                out[lane] += ci * u64::from(remote[lane]);
            }
        }
    }

    /// `CutPackets` over one u16 tile: the strided mask accumulation of
    /// [`SwarmEval::tile_cut_packets_wide`] at the fixed
    /// [`MASK16_WORDS_MAX`] stride. The word index is masked to the
    /// stride (`(k >> 6) & 15` — exact for every id < 1024, and keeps
    /// the per-edge loop provably in bounds for the full
    /// [`LANES`]-wide trip count even on stale lanes).
    fn tile16_cut_packets(&self, width: usize, scratch: &mut SwarmScratch, out: &mut [u64]) {
        const MASK_WORDS: usize = MASK16_WORDS_MAX;
        let g = self.problem.graph();
        let n = g.num_neurons() as usize;
        let tile = &scratch.tile16;
        let masks: &mut [u64] = &mut scratch.masks[..LANES * MASK_WORDS];
        out.fill(0);
        for i in 0..n {
            let ci = g.count(i as u32) as u64;
            if ci == 0 {
                continue;
            }
            let targets = g.targets(i as u32);
            if targets.is_empty() {
                continue;
            }
            masks.fill(0);
            let home = &tile[i * LANES..i * LANES + LANES];
            for &j in targets {
                let tgt: &[u16; LANES] = tile[j as usize * LANES..j as usize * LANES + LANES]
                    .try_into()
                    .expect("tile row is LANES wide");
                for lane in 0..LANES {
                    let k = tgt[lane] as usize;
                    masks[lane * MASK_WORDS + ((k >> 6) & (MASK_WORDS - 1))] |= 1u64 << (k & 63);
                }
            }
            for lane in 0..width {
                let h = home[lane] as usize;
                let words = &masks[lane * MASK_WORDS..lane * MASK_WORDS + MASK_WORDS];
                let mut distinct = 0u32;
                for (w, &word) in words.iter().enumerate() {
                    let drop_home = if w == h >> 6 { 1u64 << (h & 63) } else { 0 };
                    distinct += (word & !drop_home).count_ones();
                }
                out[lane] += ci * u64::from(distinct);
            }
        }
    }

    /// Hop-weighted packets over one u16 tile:
    /// [`SwarmEval::tile16_cut_packets`]'s mask accumulation with the
    /// weighted bit-walk reduction of [`SwarmEval::tile_cut_hops`].
    fn tile16_cut_hops(&self, width: usize, scratch: &mut SwarmScratch, out: &mut [u64]) {
        const MASK_WORDS: usize = MASK16_WORDS_MAX;
        let g = self.problem.graph();
        let n = g.num_neurons() as usize;
        let hops = self.problem.hops().expect("checked in SwarmEval::new");
        let c = self.problem.num_crossbars();
        let tile = &scratch.tile16;
        let masks: &mut [u64] = &mut scratch.masks[..LANES * MASK_WORDS];
        out.fill(0);
        for i in 0..n {
            let ci = g.count(i as u32) as u64;
            if ci == 0 {
                continue;
            }
            let targets = g.targets(i as u32);
            if targets.is_empty() {
                continue;
            }
            masks.fill(0);
            let home = &tile[i * LANES..i * LANES + LANES];
            for &j in targets {
                let tgt: &[u16; LANES] = tile[j as usize * LANES..j as usize * LANES + LANES]
                    .try_into()
                    .expect("tile row is LANES wide");
                for lane in 0..LANES {
                    let k = tgt[lane] as usize;
                    masks[lane * MASK_WORDS + ((k >> 6) & (MASK_WORDS - 1))] |= 1u64 << (k & 63);
                }
            }
            for lane in 0..width {
                let h = u32::from(home[lane]);
                let words = &masks[lane * MASK_WORDS..lane * MASK_WORDS + MASK_WORDS];
                let mut weighted = 0u64;
                let row = self.hops16_row(h, c);
                for (w, &word) in words.iter().enumerate() {
                    let base = w << 6;
                    let mut m = word;
                    if let Some(row) = row {
                        while m != 0 {
                            let k = base + m.trailing_zeros() as usize;
                            weighted += u64::from(row[k]);
                            m &= m - 1;
                        }
                    } else {
                        while m != 0 {
                            let k = (base + m.trailing_zeros() as usize) as u32;
                            weighted += u64::from(hops.hops(h, k));
                            m &= m - 1;
                        }
                    }
                }
                out[lane] += ci * weighted;
            }
        }
    }

    /// The `h`-th row of the narrow hop shadow, when it exists — the
    /// tiled `CutHops` reductions gather from this 2-byte row instead of
    /// the 4-byte `DistanceLut` whenever every distance fits u16.
    #[inline]
    fn hops16_row(&self, h: u32, c: usize) -> Option<&[u16]> {
        if self.hops16.is_empty() {
            None
        } else {
            Some(&self.hops16[h as usize * c..(h as usize + 1) * c])
        }
    }
}

/// Groups the reverse CSR into (distinct source, multiplicity) runs and
/// counts self-loops, for the packet bookkeeping.
#[allow(clippy::type_complexity)]
fn group_sources(problem: &PartitionProblem<'_>) -> (Vec<(u32, u32)>, Vec<u32>, Vec<u32>) {
    let g = problem.graph();
    let n = g.num_neurons() as usize;
    let mut grouped = Vec::new();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut self_mult = vec![0u32; n];
    let mut scratch: Vec<u32> = Vec::new();
    offsets.push(0u32);
    for i in 0..n as u32 {
        scratch.clear();
        scratch.extend_from_slice(g.sources(i));
        scratch.sort_unstable();
        let mut run = 0;
        for idx in 0..scratch.len() {
            run += 1;
            let last_of_run = idx + 1 == scratch.len() || scratch[idx + 1] != scratch[idx];
            if last_of_run {
                grouped.push((scratch[idx], run));
                if scratch[idx] == i {
                    self_mult[i as usize] = run;
                }
                run = 0;
            }
        }
        offsets.push(grouped.len() as u32);
    }
    (grouped, offsets, self_mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: u32, edges: usize, seed: u64) -> SpikeGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let synapses: Vec<(u32, u32)> = (0..edges)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..15)).collect();
        SpikeGraph::from_parts(n, synapses, counts).expect("valid graph")
    }

    fn kinds() -> [FitnessKind; 2] {
        [FitnessKind::CutSpikes, FitnessKind::CutPackets]
    }

    fn mesh_lut(c: usize) -> neuromap_noc::topology::DistanceLut {
        neuromap_noc::topology::DistanceLut::new(&neuromap_noc::topology::Mesh2D::for_crossbars(c))
    }

    #[test]
    fn init_matches_full_cost() {
        let g = random_graph(20, 70, 1);
        let p = PartitionProblem::new(&g, 4, 6).unwrap();
        let a: Vec<u32> = (0..20).map(|i| i % 4).collect();
        for kind in kinds() {
            let engine = EvalEngine::new(p, kind);
            assert_eq!(engine.init(&a).cost(), engine.full_cost(&a), "{kind:?}");
        }
    }

    #[test]
    fn move_delta_is_exact_for_both_kinds() {
        let g = random_graph(14, 60, 2);
        let p = PartitionProblem::new(&g, 3, 14).unwrap();
        let a: Vec<u32> = (0..14).map(|i| i % 3).collect();
        for kind in kinds() {
            let engine = EvalEngine::new(p, kind);
            let state = engine.init(&a);
            for i in 0..14usize {
                for to in 0..3u32 {
                    let mut b = a.clone();
                    b[i] = to;
                    let expected = engine.full_cost(&b) as i64 - engine.full_cost(&a) as i64;
                    assert_eq!(
                        engine.move_delta(&state, &a, i, to),
                        expected,
                        "{kind:?} i={i} to={to}"
                    );
                }
            }
        }
    }

    #[test]
    fn apply_move_keeps_state_consistent() {
        let g = random_graph(18, 90, 3);
        let p = PartitionProblem::new(&g, 4, 18).unwrap();
        for kind in kinds() {
            let engine = EvalEngine::new(p, kind);
            let mut a: Vec<u32> = (0..18).map(|i| i % 4).collect();
            let mut state = engine.init(&a);
            let mut rng = StdRng::seed_from_u64(9);
            for step in 0..200 {
                let i = rng.gen_range(0..18usize);
                let to = rng.gen_range(0..4u32);
                engine.apply_move(&mut state, &mut a, i, to);
                assert_eq!(
                    state.cost(),
                    engine.full_cost(&a),
                    "{kind:?} drifted at step {step}"
                );
            }
        }
    }

    #[test]
    fn sync_incremental_and_fallback_agree() {
        let g = random_graph(30, 150, 4);
        let p = PartitionProblem::new(&g, 5, 30).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for kind in kinds() {
            for churn_percent in [0usize, 3, 10, 20, 30] {
                let low = EvalEngine::new(p, kind).with_churn_threshold(1.0);
                let high = EvalEngine::new(p, kind).with_churn_threshold(0.0);
                let start: Vec<u32> = (0..30).map(|i| i % 5).collect();
                let mut cur_a = start.clone();
                let mut cur_b = start.clone();
                let mut st_a = low.init(&start);
                let mut st_b = high.init(&start);
                for _ in 0..20 {
                    let mut target = cur_a.clone();
                    for _ in 0..churn_percent {
                        let i = rng.gen_range(0..30usize);
                        target[i] = rng.gen_range(0..5u32);
                    }
                    let ca = low.sync(&mut st_a, &mut cur_a, &target);
                    let cb = high.sync(&mut st_b, &mut cur_b, &target);
                    assert_eq!(ca, cb, "{kind:?} churn {churn_percent}");
                    assert_eq!(ca, low.full_cost(&target), "{kind:?}");
                    assert_eq!(cur_a, target);
                    assert_eq!(cur_b, target);
                }
            }
        }
    }

    #[test]
    fn self_loops_and_duplicates_priced_exactly() {
        // two self-loops on 0, duplicate edges 0→1, plus a back edge
        let g = SpikeGraph::from_parts(
            3,
            vec![(0, 0), (0, 0), (0, 1), (0, 1), (1, 0), (1, 2)],
            vec![7, 3, 0],
        )
        .unwrap();
        let p = PartitionProblem::new(&g, 3, 3).unwrap();
        for kind in kinds() {
            let engine = EvalEngine::new(p, kind);
            let mut a = vec![0u32, 1, 2];
            let mut state = engine.init(&a);
            for (i, to) in [(0usize, 1u32), (1, 1), (0, 2), (2, 0), (0, 0)] {
                engine.apply_move(&mut state, &mut a, i, to);
                assert_eq!(
                    state.cost(),
                    engine.full_cost(&a),
                    "{kind:?} move {i}->{to}"
                );
            }
        }
    }

    #[test]
    fn hop_engine_matches_recompute_under_moves_and_swaps() {
        let g = random_graph(22, 120, 17);
        let lut = mesh_lut(5);
        let p = PartitionProblem::new(&g, 5, 22)
            .unwrap()
            .with_hops(&lut)
            .unwrap();
        let engine = EvalEngine::new(p, FitnessKind::CutHops);
        let mut a: Vec<u32> = (0..22).map(|i| i % 5).collect();
        let mut state = engine.init(&a);
        assert_eq!(state.cost(), engine.full_cost(&a));
        let mut rng = StdRng::seed_from_u64(3);
        for step in 0..200 {
            if rng.gen_bool(0.5) {
                let i = rng.gen_range(0..22usize);
                let to = rng.gen_range(0..5u32);
                let peek = engine.move_delta(&state, &a, i, to);
                let applied = engine.apply_move(&mut state, &mut a, i, to);
                assert_eq!(peek, applied, "step {step}");
            } else {
                let i = rng.gen_range(0..22usize);
                let j = rng.gen_range(0..22usize);
                engine.apply_swap(&mut state, &mut a, i, j);
            }
            assert_eq!(state.cost(), engine.full_cost(&a), "drifted at step {step}");
        }
    }

    #[test]
    fn hop_engine_prices_self_loops_exactly() {
        let g = SpikeGraph::from_parts(
            3,
            vec![(0, 0), (0, 0), (0, 1), (0, 1), (1, 0), (1, 2)],
            vec![7, 3, 0],
        )
        .unwrap();
        let lut = mesh_lut(4);
        let p = PartitionProblem::new(&g, 4, 3)
            .unwrap()
            .with_hops(&lut)
            .unwrap();
        let engine = EvalEngine::new(p, FitnessKind::CutHops);
        let mut a = vec![0u32, 1, 2];
        let mut state = engine.init(&a);
        for (i, to) in [(0usize, 3u32), (1, 3), (0, 2), (2, 0), (0, 0), (1, 1)] {
            engine.apply_move(&mut state, &mut a, i, to);
            assert_eq!(state.cost(), engine.full_cost(&a), "move {i}->{to}");
        }
    }

    #[test]
    fn hop_cost_with_unit_distances_equals_packets() {
        // a star's crossbars all sit one hop apart (via the hub), so the
        // hop objective must coincide with the packet objective exactly
        let g = random_graph(18, 90, 12);
        let topo = neuromap_noc::topology::Star::new(6);
        let lut = neuromap_noc::topology::DistanceLut::new(&topo);
        let p = PartitionProblem::new(&g, 6, 18).unwrap();
        let ph = p.with_hops(&lut).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a: Vec<u32> = (0..18).map(|_| rng.gen_range(0..6u32)).collect();
            assert_eq!(ph.cut_hops(&a), 2 * p.cut_packets(&a));
        }
    }

    #[test]
    fn swarm_eval_hops_matches_scalar_across_mask_strides() {
        let g = random_graph(60, 350, 23);
        let mut rng = StdRng::seed_from_u64(9);
        for c in [4usize, 63, 64, 65, 129, 255, 256] {
            let lut = mesh_lut(c);
            let p = PartitionProblem::new(&g, c, 60)
                .unwrap()
                .with_hops(&lut)
                .unwrap();
            let evaluator = SwarmEval::new(p, FitnessKind::CutHops);
            assert!(evaluator.batched(), "{c} crossbars must stay tiled");
            let lanes = 70; // full tile + remainder
            let positions: Vec<u32> = (0..lanes * 60)
                .map(|_| rng.gen_range(0..c as u32))
                .collect();
            let mut out = vec![0u64; lanes];
            evaluator.eval_swarm(&positions, lanes, &mut SwarmScratch::default(), &mut out);
            for lane in 0..lanes {
                assert_eq!(
                    out[lane],
                    p.cut_hops(&positions[lane * 60..(lane + 1) * 60]),
                    "c={c} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn swarm_eval_hops_falls_back_beyond_word_tile_envelope() {
        let g = random_graph(40, 100, 4);
        let lut = mesh_lut(1100);
        let p = PartitionProblem::new(&g, 1100, 4)
            .unwrap()
            .with_hops(&lut)
            .unwrap();
        let evaluator = SwarmEval::new(p, FitnessKind::CutHops);
        assert!(!evaluator.batched());
        assert_eq!(evaluator.kernel(), SwarmKernel::Scalar);
        let mut rng = StdRng::seed_from_u64(6);
        let positions: Vec<u32> = (0..2 * 40).map(|_| rng.gen_range(0..1100u32)).collect();
        let mut out = vec![0u64; 2];
        evaluator.eval_swarm(&positions, 2, &mut SwarmScratch::default(), &mut out);
        assert_eq!(out[0], p.cut_hops(&positions[0..40]));
        assert_eq!(out[1], p.cut_hops(&positions[40..80]));
    }

    #[test]
    fn swarm_eval_word_tile_hops_matches_scalar() {
        // the u16 kernels own 256 < c ≤ 1024 — both sides of the byte
        // ceiling's first word boundary and the word-tile ceiling itself
        let g = random_graph(60, 350, 23);
        let mut rng = StdRng::seed_from_u64(19);
        for c in [257usize, 320, 512, 1024] {
            let lut = mesh_lut(c);
            let p = PartitionProblem::new(&g, c, 60)
                .unwrap()
                .with_hops(&lut)
                .unwrap();
            let evaluator = SwarmEval::new(p, FitnessKind::CutHops);
            assert_eq!(evaluator.kernel(), SwarmKernel::WordTile, "c={c}");
            let lanes = 70; // full tile + remainder
            let positions: Vec<u32> = (0..lanes * 60)
                .map(|_| rng.gen_range(0..c as u32))
                .collect();
            let mut out = vec![0u64; lanes];
            evaluator.eval_swarm(&positions, lanes, &mut SwarmScratch::default(), &mut out);
            for lane in 0..lanes {
                assert_eq!(
                    out[lane],
                    p.cut_hops(&positions[lane * 60..(lane + 1) * 60]),
                    "c={c} lane={lane}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "hop table")]
    fn swarm_eval_hops_without_table_rejected() {
        let g = random_graph(10, 20, 1);
        let p = PartitionProblem::new(&g, 4, 10).unwrap();
        let _ = SwarmEval::new(p, FitnessKind::CutHops);
    }

    #[test]
    fn swarm_eval_matches_scalar_costs() {
        // more candidates than one tile, both kinds, random positions
        let g = random_graph(40, 300, 21);
        let p = PartitionProblem::new(&g, 6, 40).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let lanes = 150; // 2 full tiles + remainder
        let n = 40usize;
        let positions: Vec<u32> = (0..lanes * n).map(|_| rng.gen_range(0..6u32)).collect();
        for kind in kinds() {
            let evaluator = SwarmEval::new(p, kind);
            assert!(evaluator.batched());
            let mut out = vec![0u64; lanes];
            let mut scratch = SwarmScratch::default();
            evaluator.eval_swarm(&positions, lanes, &mut scratch, &mut out);
            for lane in 0..lanes {
                assert_eq!(
                    out[lane],
                    p.cost(kind, &positions[lane * n..(lane + 1) * n]),
                    "{kind:?} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn swarm_eval_self_loops_and_silent_neurons() {
        let g = SpikeGraph::from_parts(
            4,
            vec![(0, 0), (0, 1), (1, 2), (3, 3), (2, 1)],
            vec![5, 0, 2, 9],
        )
        .unwrap();
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let positions: Vec<u32> = vec![0, 1, 0, 1, /* lane 2 */ 1, 1, 0, 0];
        for kind in kinds() {
            let evaluator = SwarmEval::new(p, kind);
            let mut out = vec![0u64; 2];
            let mut scratch = SwarmScratch::default();
            evaluator.eval_swarm(&positions, 2, &mut scratch, &mut out);
            assert_eq!(out[0], p.cost(kind, &positions[0..4]), "{kind:?}");
            assert_eq!(out[1], p.cost(kind, &positions[4..8]), "{kind:?}");
        }
    }

    #[test]
    fn swarm_eval_multi_word_masks_are_exact() {
        // every mask stride (1–4 words) plus both sides of each word
        // boundary must match the scalar evaluation exactly
        let g = random_graph(90, 400, 8);
        let mut rng = StdRng::seed_from_u64(6);
        for c in [63usize, 64, 65, 127, 128, 129, 192, 193, 255, 256] {
            let p = PartitionProblem::new(&g, c, 90).unwrap();
            for kind in kinds() {
                let evaluator = SwarmEval::new(p, kind);
                assert!(evaluator.batched(), "{c} crossbars must stay tiled");
                assert_eq!(evaluator.mask_words(), c.div_ceil(64));
                let lanes = 3;
                let positions: Vec<u32> = (0..lanes * 90)
                    .map(|_| rng.gen_range(0..c as u32))
                    .collect();
                let mut out = vec![0u64; lanes];
                evaluator.eval_swarm(&positions, lanes, &mut SwarmScratch::default(), &mut out);
                for lane in 0..lanes {
                    assert_eq!(
                        out[lane],
                        p.cost(kind, &positions[lane * 90..(lane + 1) * 90]),
                        "{kind:?} c={c} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn swarm_eval_word_tile_matches_scalar() {
        // 256 < c ≤ 1024 rides the u16 word tile; results must match the
        // scalar reference exactly across lanes and word boundaries
        let g = random_graph(90, 400, 8);
        let mut rng = StdRng::seed_from_u64(14);
        for c in [257usize, 300, 512, 1023, 1024] {
            let p = PartitionProblem::new(&g, c, 4).unwrap();
            for kind in kinds() {
                let evaluator = SwarmEval::new(p, kind);
                assert!(evaluator.batched(), "{c} crossbars must stay tiled");
                assert_eq!(evaluator.kernel(), SwarmKernel::WordTile, "c={c}");
                let lanes = 67; // full tile + remainder
                let positions: Vec<u32> = (0..lanes * 90)
                    .map(|_| rng.gen_range(0..c as u32))
                    .collect();
                let mut out = vec![0u64; lanes];
                evaluator.eval_swarm(&positions, lanes, &mut SwarmScratch::default(), &mut out);
                for lane in 0..lanes {
                    assert_eq!(
                        out[lane],
                        p.cost(kind, &positions[lane * 90..(lane + 1) * 90]),
                        "{kind:?} c={c} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn swarm_eval_falls_back_beyond_word_tile_envelope() {
        // 1100 crossbars: past even the u16 word tile; results must
        // still be exact through the per-candidate fallback
        let g = random_graph(80, 200, 8);
        let p = PartitionProblem::new(&g, 1100, 4).unwrap();
        for kind in kinds() {
            let evaluator = SwarmEval::new(p, kind);
            assert!(!evaluator.batched());
            assert_eq!(evaluator.kernel(), SwarmKernel::Scalar);
            let mut rng = StdRng::seed_from_u64(6);
            let positions: Vec<u32> = (0..2 * 80).map(|_| rng.gen_range(0..1100u32)).collect();
            let mut out = vec![0u64; 2];
            evaluator.eval_swarm(&positions, 2, &mut SwarmScratch::default(), &mut out);
            assert_eq!(out[0], p.cost(kind, &positions[0..80]), "{kind:?}");
            assert_eq!(out[1], p.cost(kind, &positions[80..160]), "{kind:?}");
        }
    }

    #[test]
    fn swarm_kernel_selection_is_total() {
        for (c, expected) in [
            (1usize, SwarmKernel::ByteTile),
            (256, SwarmKernel::ByteTile),
            (257, SwarmKernel::WordTile),
            (1024, SwarmKernel::WordTile),
            (1025, SwarmKernel::Scalar),
            (1 << 20, SwarmKernel::Scalar),
        ] {
            assert_eq!(SwarmKernel::for_crossbars(c), expected, "c={c}");
        }
        assert_eq!(SwarmKernel::ByteTile.name(), "byte-tile");
        assert_eq!(SwarmKernel::WordTile.to_string(), "word-tile");
        assert_eq!(SwarmKernel::Scalar.name(), "scalar");
    }

    #[test]
    fn sync_handles_no_change() {
        let g = random_graph(10, 30, 6);
        let p = PartitionProblem::new(&g, 2, 10).unwrap();
        let engine = EvalEngine::new(p, FitnessKind::CutSpikes);
        let mut a: Vec<u32> = (0..10).map(|i| i % 2).collect();
        let target = a.clone();
        let mut state = engine.init(&a);
        let before = state.cost();
        assert_eq!(engine.sync(&mut state, &mut a, &target), before);
    }
}
