//! A persistent, deterministic phase-synchronized worker pool.
//!
//! The optimizers alternate between an embarrassingly parallel phase
//! (step + evaluate every candidate) and a tiny sequential reduction
//! (update the global best). The seed implementation spawned a fresh
//! `thread::scope` per evaluation round; this pool spawns each worker
//! **once** per optimizer call and keeps it alive across all rounds,
//! synchronizing rounds by message passing (one command in, one result
//! out, per worker per round).
//!
//! ## Determinism contract
//!
//! * Each worker exclusively owns its state `W` for the whole run; no
//!   worker ever observes another worker's state.
//! * `reduce` runs on the caller's thread between rounds and receives the
//!   per-worker results **in worker-index order**, regardless of which
//!   worker finished first.
//! * The next round's command is a pure function of those results.
//!
//! Results are therefore a pure function of the initial states and
//! closures — independent of thread count and scheduling. With a single
//! worker everything runs inline on the caller's thread through the same
//! code path, so `threads = 1` and `threads = N` produce byte-identical
//! outputs as long as the caller partitions state deterministically.

use std::sync::mpsc;

/// Runs `rounds` alternating work/reduce phases over per-worker states.
///
/// Per round `r`, every worker runs `work(r, &cmd, &mut w_i)` in
/// parallel; the caller's thread then runs `reduce(r, results)` over the
/// results in worker-index order. `reduce` returns the command for the
/// next round, or `None` to stop early.
///
/// Returns the final worker states (in order).
///
/// # Panics
///
/// Propagates panics from `work` and `reduce` (scoped threads join on
/// scope exit; a panicked worker poisons the run).
pub fn run_phased<W, R, C>(
    mut workers: Vec<W>,
    rounds: u32,
    first_cmd: C,
    work: impl Fn(u32, &C, &mut W) -> R + Sync,
    mut reduce: impl FnMut(u32, Vec<R>) -> Option<C>,
) -> Vec<W>
where
    W: Send,
    R: Send,
    C: Clone + Send + Sync,
{
    if rounds == 0 {
        return workers;
    }

    if workers.len() <= 1 {
        let mut cmd = first_cmd;
        for r in 0..rounds {
            let results: Vec<R> = workers.iter_mut().map(|w| work(r, &cmd, w)).collect();
            match reduce(r, results) {
                Some(next) => cmd = next,
                None => break,
            }
        }
        return workers;
    }

    let work = &work;
    std::thread::scope(|s| {
        let mut cmd_txs = Vec::with_capacity(workers.len());
        let mut res_rxs = Vec::with_capacity(workers.len());
        let mut handles = Vec::with_capacity(workers.len());
        for mut w in workers.drain(..) {
            let (cmd_tx, cmd_rx) = mpsc::channel::<(u32, C)>();
            let (res_tx, res_rx) = mpsc::channel::<R>();
            cmd_txs.push(cmd_tx);
            res_rxs.push(res_rx);
            handles.push(s.spawn(move || {
                while let Ok((r, cmd)) = cmd_rx.recv() {
                    let result = work(r, &cmd, &mut w);
                    if res_tx.send(result).is_err() {
                        break;
                    }
                }
                w
            }));
        }

        let mut cmd = first_cmd;
        for r in 0..rounds {
            for tx in &cmd_txs {
                tx.send((r, cmd.clone())).expect("worker alive");
            }
            let results: Vec<R> = res_rxs
                .iter()
                .map(|rx| rx.recv().expect("worker answers every round"))
                .collect();
            match reduce(r, results) {
                Some(next) => cmd = next,
                None => break,
            }
        }
        drop(cmd_txs); // hang up: workers exit their loop and return state

        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread completes"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sums per-worker contributions over rounds; equivalent for any
    /// worker count.
    fn run_sum(num_workers: usize) -> (Vec<u64>, Vec<u64>) {
        // worker state: accumulator; command: the round's multiplier
        let workers: Vec<u64> = vec![0; num_workers];
        let mut trace = Vec::new();
        let finals = run_phased(
            workers,
            5,
            1u64,
            |round, mult, acc| {
                *acc += u64::from(round + 1) * *mult;
                *acc
            },
            |_, results| {
                let total: u64 = results.iter().sum();
                trace.push(total);
                Some(total % 7 + 1)
            },
        );
        (finals, trace)
    }

    #[test]
    fn single_and_multi_worker_agree_per_worker() {
        // per-worker state evolution must not depend on *other* workers
        // except through the reduce-produced command
        let (f1, t1) = run_sum(1);
        let (f4, t4) = run_sum(4);
        assert_eq!(f1[0], t1.last().copied().unwrap(), "sanity");
        // all workers of the 4-run evolve identically (same commands)
        assert!(f4.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(t4.len(), t1.len());
    }

    #[test]
    fn results_arrive_in_worker_order() {
        let workers: Vec<usize> = (0..6).collect();
        let mut seen = Vec::new();
        run_phased(
            workers,
            3,
            (),
            |_, (), idx| {
                // stagger finish times in reverse order
                std::thread::sleep(std::time::Duration::from_millis((6 - *idx as u64) * 2));
                *idx
            },
            |_, results| {
                seen.push(results.clone());
                Some(())
            },
        );
        for round in seen {
            assert_eq!(round, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn early_stop_skips_remaining_rounds() {
        let mut rounds_run = 0;
        run_phased(
            vec![0u32; 3],
            100,
            (),
            |_, (), w| {
                *w += 1;
                *w
            },
            |r, _| {
                rounds_run = r + 1;
                if r == 4 {
                    None
                } else {
                    Some(())
                }
            },
        );
        assert_eq!(rounds_run, 5);
    }

    #[test]
    fn zero_rounds_is_noop() {
        let out = run_phased(vec![7u8; 2], 0, (), |_, (), w| *w, |_, _| Some(()));
        assert_eq!(out, vec![7, 7]);
    }

    #[test]
    fn final_states_returned_in_order() {
        let out = run_phased(
            (0..5u32).collect::<Vec<_>>(),
            2,
            (),
            |_, (), w| {
                *w *= 10;
                *w
            },
            |_, _| Some(()),
        );
        assert_eq!(out, vec![0, 100, 200, 300, 400]);
    }
}
