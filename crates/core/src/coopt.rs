//! Joint partition ⇄ placement co-optimization.
//!
//! The staged pipeline optimizes the two mapping stages in sequence:
//! PSO partitions neurons into clusters pricing every cut packet by the
//! *identity* wiring's hop distances, then the QAP placement optimizer
//! ([`crate::place`]) permutes clusters onto physical crossbars. The
//! partition therefore optimizes against distances the placement stage is
//! about to invalidate.
//!
//! [`co_optimize`] closes that loop: the swarm runs on
//! [`FitnessKind::CutHops`], and every `replace_every` iterations the
//! placement optimizer re-runs on the current global best; the resulting
//! permutation re-prices the hop table the swarm evaluates against
//! ([`DistanceLut::permuted`]), the carried personal/global bests are
//! re-valued under the new pricing ([`reseat_best`]), and the search
//! continues from the same particle RNG streams. The staged result is
//! always computed too and kept as the fallback — the joint loop can
//! explore a worse basin, and [`CooptOutcome::used_joint`] records which
//! result won on final hop-weighted packets.
//!
//! ### Determinism contract
//!
//! Everything in the loop is deterministic and thread-count independent:
//! the swarm segments run on the same `core::pool` discipline as a plain
//! [`PsoPartitioner`] run (per-particle RNG streams carried across
//! segment boundaries in particle order, reductions in particle order),
//! the placement optimizer is byte-identical for every thread count by
//! its own contract, and the re-valuation pass is single-threaded. Two
//! [`co_optimize`] calls with the same inputs and any `threads` values
//! return identical outcomes, traces included.

use crate::error::CoreError;
use crate::multilevel::{self, MultilevelConfig};
use crate::partition::{FitnessKind, PartitionProblem};
use crate::pipeline::TrafficMode;
use crate::place::{optimize_placement, PlaceConfig, TrafficMatrix};
use crate::pso::{reseat_best, run_rounds, PsoConfig, PsoPartitioner, SwarmState};
use crate::refine::refine;
use neuromap_hw::mapping::{Mapping, Placement};
use neuromap_noc::topology::DistanceLut;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the joint loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CooptConfig {
    /// Swarm hyperparameters. The fitness must be
    /// [`FitnessKind::CutHops`] — the loop works by re-pricing hop
    /// distances, which the other objectives never read.
    pub pso: PsoConfig,
    /// Placement-optimizer hyperparameters, used both inside the loop and
    /// for the staged baseline.
    pub place: PlaceConfig,
    /// Placement refresh period: the placement optimizer re-runs (and the
    /// swarm's hop table is re-priced) every this many PSO iterations.
    pub replace_every: u32,
    /// When set, the staged baseline's partition comes from the
    /// multilevel V-cycle ([`crate::multilevel::vcycle`]) instead of flat
    /// PSO, and the V-cycle's result additionally warm-starts the joint
    /// swarm. The embedded fitness must be [`FitnessKind::CutHops`] to
    /// match the loop's objective. `None` preserves the flat staged
    /// baseline byte-for-byte.
    #[serde(default)]
    pub multilevel: Option<MultilevelConfig>,
}

impl Default for CooptConfig {
    fn default() -> Self {
        Self {
            pso: PsoConfig {
                fitness: FitnessKind::CutHops,
                ..PsoConfig::default()
            },
            place: PlaceConfig::default(),
            replace_every: 20,
            multilevel: None,
        }
    }
}

impl CooptConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for invalid swarm or placement
    /// hyperparameters, a zero refresh period, or a fitness other than
    /// [`FitnessKind::CutHops`].
    pub fn validate(&self) -> Result<(), CoreError> {
        self.pso.validate()?;
        self.place.validate()?;
        if self.replace_every == 0 {
            return Err(CoreError::InvalidParameter {
                name: "replace_every",
                value: "0".into(),
            });
        }
        if self.pso.fitness != FitnessKind::CutHops {
            return Err(CoreError::InvalidParameter {
                name: "fitness",
                value: format!(
                    "{:?} (the joint loop re-prices hop distances; use CutHops)",
                    self.pso.fitness
                ),
            });
        }
        if let Some(ml) = &self.multilevel {
            ml.validate()?;
            if ml.pso.fitness != FitnessKind::CutHops {
                return Err(CoreError::InvalidParameter {
                    name: "multilevel.fitness",
                    value: format!(
                        "{:?} (the staged baseline is priced in hops; use CutHops)",
                        ml.pso.fitness
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Result of a joint co-optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct CooptOutcome {
    /// The winning mapping, already placed onto physical crossbars.
    pub mapping: Mapping,
    /// The winning cluster → physical crossbar permutation.
    pub placement: Placement,
    /// Hop-weighted packets of the staged (partition-then-place) result.
    pub staged_cost: u64,
    /// Hop-weighted packets of the joint loop's result.
    pub joint_cost: u64,
    /// Whether the joint result beat the staged baseline (strictly); when
    /// false, [`CooptOutcome::mapping`] *is* the staged result.
    pub used_joint: bool,
    /// Global-best fitness after every joint-loop round (the initial
    /// evaluation first). Entries are priced under the hop table active
    /// in their segment, so the trace is monotone only within segments.
    pub trace: Vec<u64>,
}

/// Runs the joint partition ⇄ placement loop against a staged baseline
/// and returns whichever placed mapping carries fewer hop-weighted
/// packets (ties go to the staged result, making the joint loop a pure
/// refinement: the outcome never loses to the staged pipeline).
///
/// `problem` must carry a hop table ([`PartitionProblem::with_hops`]) —
/// the identity pricing both the staged baseline and the joint loop's
/// first segment search under. `dist` must be that same table; placements
/// found inside the loop permute it via [`DistanceLut::permuted`].
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for an invalid configuration or a
/// problem without a hop table; propagates partitioner and placement
/// errors.
pub fn co_optimize(
    problem: &PartitionProblem<'_>,
    dist: &DistanceLut,
    mode: TrafficMode,
    cfg: &CooptConfig,
) -> Result<CooptOutcome, CoreError> {
    cfg.validate()?;
    if problem.hops().is_none() {
        return Err(CoreError::InvalidParameter {
            name: "problem",
            value: "no hop table attached (CutHops needs `with_hops`)".into(),
        });
    }
    let graph = problem.graph();

    // ---- staged baseline: partition to convergence, then place ----
    let staged_map = match &cfg.multilevel {
        None => PsoPartitioner::new(cfg.pso).partition_traced(problem)?.0,
        Some(ml) => multilevel::vcycle(problem, ml)?.mapping,
    };
    let staged_traffic = TrafficMatrix::from_mapping(graph, &staged_map, mode);
    let staged_place = optimize_placement(&staged_traffic, dist, &cfg.place)?;
    let staged_cost = staged_place.optimized_cost;

    // ---- joint loop: segments of `replace_every` rounds, re-placing
    // and re-pricing between them ----
    let mut state = SwarmState::new(problem, &cfg.pso);
    if cfg.multilevel.is_some() {
        // warm-start the joint swarm with the V-cycle's partition (last
        // slot, so the memetic baseline injections stay untouched)
        state.inject(
            cfg.pso.swarm_size.saturating_sub(1),
            staged_map.assignment().to_vec(),
        );
    }
    let mut trace = Vec::new();
    let total = cfg.pso.iterations;
    let k = cfg.replace_every;
    let mut done = k.min(total);
    run_rounds(problem, &cfg.pso, &mut state, done, true, &mut trace);
    let mut last_perm: Option<DistanceLut> = None;
    while done < total {
        let seg = k.min(total - done);
        // re-place the current global best and re-price the swarm's hop
        // table under the permutation it finds
        let gbest_map = problem.into_mapping(state.gbest_position.clone())?;
        let traffic = TrafficMatrix::from_mapping(graph, &gbest_map, mode);
        let place = optimize_placement(&traffic, dist, &cfg.place)?;
        last_perm = Some(dist.permuted(place.placement.as_slice()));
        let seg_problem = (*problem).with_hops(last_perm.as_ref().expect("just set"))?;
        reseat_best(&seg_problem, &cfg.pso, &mut state);
        run_rounds(&seg_problem, &cfg.pso, &mut state, seg, false, &mut trace);
        done += seg;
    }

    // greedy polish of the joint best, under the pricing its final
    // segment searched with (mirrors the staged partitioner's polish)
    let mut joint_pos = state.gbest_position;
    if cfg.pso.polish_passes > 0 {
        let polish_problem = match &last_perm {
            Some(p) => (*problem).with_hops(p)?,
            None => *problem,
        };
        refine(
            &polish_problem,
            cfg.pso.fitness,
            &mut joint_pos,
            cfg.pso.polish_passes,
        );
    }
    let joint_map = problem.into_mapping(joint_pos)?;
    let joint_traffic = TrafficMatrix::from_mapping(graph, &joint_map, mode);
    let joint_place = optimize_placement(&joint_traffic, dist, &cfg.place)?;
    let joint_cost = joint_place.optimized_cost;

    // the final yardstick is the same for both: hop-weighted packets of
    // the placed mapping under the *physical* distance table
    let used_joint = joint_cost < staged_cost;
    let (map, outcome) = if used_joint {
        (joint_map, joint_place)
    } else {
        (staged_map, staged_place)
    };
    let placed = map.place(&outcome.placement)?;
    Ok(CooptOutcome {
        mapping: placed,
        placement: outcome.placement,
        staged_cost,
        joint_cost,
        used_joint,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;
    use crate::place::placement_cost;
    use neuromap_noc::topology::Mesh2D;

    fn ring_graph(n: u32, spikes: u32) -> SpikeGraph {
        let mut synapses = Vec::new();
        for i in 0..n {
            synapses.push((i, (i + 1) % n));
            synapses.push((i, (i + 5) % n));
        }
        SpikeGraph::from_parts(n, synapses, vec![spikes; n as usize]).unwrap()
    }

    fn small_cfg() -> CooptConfig {
        CooptConfig {
            pso: PsoConfig {
                swarm_size: 12,
                iterations: 24,
                fitness: FitnessKind::CutHops,
                ..PsoConfig::default()
            },
            place: PlaceConfig {
                restarts: 2,
                sa_moves: 400,
                ..PlaceConfig::default()
            },
            replace_every: 8,
            multilevel: None,
        }
    }

    fn run_on_mesh(cfg: &CooptConfig) -> CooptOutcome {
        let g = ring_graph(16, 20);
        let topo = Mesh2D::for_crossbars(4);
        let dist = DistanceLut::new(&topo);
        let problem = PartitionProblem::new(&g, 4, 4)
            .unwrap()
            .with_hops(&dist)
            .unwrap();
        co_optimize(&problem, &dist, TrafficMode::PerCrossbar, cfg).unwrap()
    }

    #[test]
    fn joint_never_loses_to_staged() {
        let out = run_on_mesh(&small_cfg());
        assert_eq!(out.used_joint, out.joint_cost < out.staged_cost);
        let winner = out.joint_cost.min(out.staged_cost);
        assert_eq!(
            if out.used_joint {
                out.joint_cost
            } else {
                out.staged_cost
            },
            winner
        );
    }

    #[test]
    fn outcome_cost_matches_a_recompute() {
        // the winning cost must equal placement_cost of the returned
        // physical mapping under the identity permutation (the mapping is
        // already placed)
        let g = ring_graph(16, 20);
        let topo = Mesh2D::for_crossbars(4);
        let dist = DistanceLut::new(&topo);
        let problem = PartitionProblem::new(&g, 4, 4)
            .unwrap()
            .with_hops(&dist)
            .unwrap();
        let out = co_optimize(&problem, &dist, TrafficMode::PerCrossbar, &small_cfg()).unwrap();
        let traffic = TrafficMatrix::from_mapping(&g, &out.mapping, TrafficMode::PerCrossbar);
        let identity: Vec<u32> = (0..4).collect();
        let recomputed = placement_cost(&traffic, &dist, &identity);
        let winner = if out.used_joint {
            out.joint_cost
        } else {
            out.staged_cost
        };
        assert_eq!(recomputed, winner);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let base = small_cfg();
        let run = |threads: usize| {
            let cfg = CooptConfig {
                pso: PsoConfig {
                    threads,
                    ..base.pso
                },
                place: PlaceConfig {
                    threads,
                    ..base.place
                },
                ..base
            };
            run_on_mesh(&cfg)
        };
        let one = run(1);
        for threads in [2, 4, 16] {
            assert_eq!(run(threads), one, "thread count changed the outcome");
        }
    }

    #[test]
    fn trace_covers_every_round() {
        let cfg = small_cfg();
        let out = run_on_mesh(&cfg);
        // init entry + one entry per iteration
        assert_eq!(out.trace.len(), cfg.pso.iterations as usize + 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let g = ring_graph(16, 20);
        let topo = Mesh2D::for_crossbars(4);
        let dist = DistanceLut::new(&topo);
        let problem = PartitionProblem::new(&g, 4, 4)
            .unwrap()
            .with_hops(&dist)
            .unwrap();
        let bad = CooptConfig {
            replace_every: 0,
            ..small_cfg()
        };
        assert!(co_optimize(&problem, &dist, TrafficMode::PerCrossbar, &bad).is_err());
        let bad = CooptConfig {
            pso: PsoConfig {
                fitness: FitnessKind::CutSpikes,
                ..small_cfg().pso
            },
            ..small_cfg()
        };
        assert!(co_optimize(&problem, &dist, TrafficMode::PerCrossbar, &bad).is_err());
        // a problem without a hop table is rejected up front, not at the
        // first cut_hops evaluation
        let bare = PartitionProblem::new(&g, 4, 4).unwrap();
        assert!(co_optimize(&bare, &dist, TrafficMode::PerCrossbar, &small_cfg()).is_err());
    }

    #[test]
    fn multilevel_staged_baseline_composes() {
        use crate::multilevel::MultilevelConfig;
        let ml = MultilevelConfig {
            pso: PsoConfig {
                swarm_size: 8,
                iterations: 8,
                fitness: FitnessKind::CutHops,
                ..PsoConfig::default()
            },
            min_coarse_neurons: 4,
            max_levels: 2,
            ..MultilevelConfig::default()
        };
        let cfg = CooptConfig {
            multilevel: Some(ml),
            ..small_cfg()
        };
        let out = run_on_mesh(&cfg);
        // the final yardstick contract is unchanged: the winner is the
        // cheaper of staged (now multilevel) and joint
        assert_eq!(out.used_joint, out.joint_cost < out.staged_cost);
        // and the composition stays deterministic across thread counts
        let run = |threads: usize| {
            let cfg = CooptConfig {
                pso: PsoConfig { threads, ..cfg.pso },
                multilevel: Some(MultilevelConfig {
                    threads,
                    pso: PsoConfig { threads, ..ml.pso },
                    ..ml
                }),
                ..cfg
            };
            run_on_mesh(&cfg)
        };
        assert_eq!(run(1), run(4));
        // a non-CutHops embedded fitness is rejected up front
        let bad = CooptConfig {
            multilevel: Some(MultilevelConfig {
                pso: PsoConfig {
                    fitness: FitnessKind::CutSpikes,
                    ..ml.pso
                },
                ..ml
            }),
            ..small_cfg()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn segmented_run_with_huge_period_matches_staged_search() {
        // replace_every >= iterations ⇒ the joint loop is one un-refreshed
        // segment: its search equals the staged partitioner's, so the
        // joint path must stay feasible and fully traced
        let cfg = CooptConfig {
            replace_every: 1000,
            ..small_cfg()
        };
        let out = run_on_mesh(&cfg);
        assert_eq!(out.trace.len(), cfg.pso.iterations as usize + 1);
        assert!(out.joint_cost >= out.trace.last().copied().unwrap_or(0).min(out.joint_cost));
    }
}
