#!/usr/bin/env bash
# Tier-1 verification plus the lint/bench gates added with the eval-engine
# PR. Everything runs offline (all dependencies are vendored in ./vendor).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release

echo "==> tests (workspace)"
cargo test --workspace -q

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (1 sample)"
# the eval bench asserts the 256-crossbar scenario stays on the batched
# (multi-word) path before timing anything — a fallback regression fails
# here, not as a silent slowdown
NEUROMAP_BENCH_FAST=1 cargo bench -p neuromap-bench --bench eval
# the noc bench also differentially gates the event engine against the
# cycle-driven oracle before timing anything
NEUROMAP_BENCH_FAST=1 cargo bench -p neuromap-bench --bench noc

echo "==> BENCH_eval.json key gate (large-arch + placement trajectory present)"
for key in \
  "swarm_eval/synth_16x16grid/scalar/CutPackets" \
  "swarm_eval/synth_16x16grid/batched/CutPackets" \
  "swarm_eval/synth_16x16grid/batched/CutSpikes" \
  "swarm_eval/synth_16x16grid/scalar/CutHops" \
  "swarm_eval/synth_16x16grid/batched/CutHops" \
  "placement/synth_16x16grid/optimize" \
  "pso_step/synth_16x16grid/swarm40_iters4/CutPackets" \
  "pso_step/synth_16x16grid/swarm40_iters4/CutSpikes" \
  "multilevel/synth_32x32grid/flat/CutSpikes" \
  "multilevel/synth_32x32grid/vcycle/CutSpikes" \
  "hier/synth_4chip16x16/scalar/CutSpikes" \
  "hier/synth_4chip16x16/batched/CutSpikes" \
  "hier/synth_4chip16x16/batched/CutPackets" \
  "hier/synth_4chip16x16/batched/CutHops"; do
  grep -qF "\"id\": \"$key\"" BENCH_eval.json \
    || { echo "BENCH_eval.json lost key: $key"; exit 1; }
done

echo "==> paired-ratio gate (same-run baseline-vs-candidate entries present)"
# cross-PR reads compare these ratios, not absolute ns (the 1-core box
# throttles under sustained bench load — ROADMAP caveat from PR 3)
for ratio in \
  "swarm_eval/synth_16x16grid/CutPackets" \
  "swarm_eval/synth_16x16grid/CutHops" \
  "move/synth_2x400/CutSpikes" \
  "coopt/synth_8x8grid/CutHops" \
  "multilevel/synth_32x32grid/CutSpikes" \
  "hier/synth_4chip16x16/CutSpikes" \
  "hier/synth_4chip16x16/CutHops"; do
  grep -qF "\"id\": \"$ratio\", \"baseline\"" BENCH_eval.json \
    || { echo "BENCH_eval.json lost paired ratio: $ratio"; exit 1; }
done
for ratio in \
  "engine/sparse_paper64" \
  "engine/dense_burst16" \
  "engine/dense_torus64" \
  "engine/dense_vc4_burst16" \
  "engine/torus64_vc2_shallow" \
  "engine/torus64_vc4_depth4" \
  "trace/dense_burst16" \
  "trees/mesh64_multicast" \
  "hier_engine/multichip64"; do
  grep -qF "\"id\": \"$ratio\", \"baseline\"" BENCH_noc.json \
    || { echo "BENCH_noc.json lost paired ratio: $ratio"; exit 1; }
done

echo "==> dense-regime speedup floor (same-run ratio, throttle-immune)"
# the per-port wake scheduler must keep the event engine ahead of the
# cycle oracle even on saturated traffic; both sides are timed in the
# same bench run, so box throttling cancels out of the ratio
dense=$(sed -n 's/.*"noc_dense_speedup": \([0-9.]*\).*/\1/p' BENCH_noc.json | head -1)
awk -v d="$dense" 'BEGIN { exit !(d >= 1.5) }' \
  || { echo "noc_dense_speedup regressed below 1.5x (got ${dense:-missing})"; exit 1; }

echo "==> multilevel speedup floor (V-cycle vs flat PSO at 1024 crossbars)"
# the coarsen-partition-refine path must keep its wall-time edge over
# flat PSO on the 32x32-grid scenario; the bench itself asserts the
# quality side (V-cycle cut <= flat cut), so this ratio is a genuine
# equal-or-better-quality speedup, same-run and throttle-immune
ml=$(sed -n 's/.*"id": "multilevel\/synth_32x32grid\/CutSpikes".*"speedup": \([0-9.]*\).*/\1/p' BENCH_eval.json | head -1)
awk -v m="$ml" 'BEGIN { exit !(m >= 3.0) }' \
  || { echo "multilevel speedup regressed below 3.0x (got ${ml:-missing})"; exit 1; }

echo "==> hier word-tile speedup floor (1024-crossbar batched vs scalar)"
# past the 256-crossbar byte-tile envelope, the u16 word-tile kernel must
# keep a real batched edge over the scalar fallback on the 4-chip
# scenario; the bench asserts bit-identity with scalar before timing
hr=$(sed -n 's/.*"id": "hier\/synth_4chip16x16\/CutSpikes".*"speedup": \([0-9.]*\).*/\1/p' BENCH_eval.json | head -1)
awk -v h="$hr" 'BEGIN { exit !(h >= 2.0) }' \
  || { echo "hier word-tile speedup regressed below 2.0x (got ${hr:-missing})"; exit 1; }

echo "==> ratio-direction gate (every paired ratio carries higher_is_better)"
# a bare "speedup" number is ambiguous: the coopt, trace and trees
# entries deliberately record overhead factors below 1. Every ratio line
# must carry the flag, and every true-flagged entry must actually sit at
# or above 1.0 — a 'speedup' that silently dropped below parity is a
# regression even if the entry itself is still present
awk '/"speedup": / {
  if (!/"higher_is_better": (true|false)/) {
    print "ratio missing higher_is_better in " FILENAME ": " $0; bad = 1
  } else if (/"higher_is_better": true/ && match($0, /"speedup": [0-9.]+/)) {
    s = substr($0, RSTART + 11, RLENGTH - 11) + 0
    if (s < 1.0) { print "true-flagged ratio below 1.0 in " FILENAME ": " $0; bad = 1 }
  }
} END { exit bad }' BENCH_eval.json BENCH_noc.json \
  || { echo "ratio-direction gate failed"; exit 1; }

echo "==> trace-overhead ceiling (tracing on must stay usable on dense traffic)"
# tracing is opt-in and zero-cost when off (the engine/* ratios above
# run untraced); when on, the same-run on/off ratio on the dense point
# must stay under a generous ceiling so per-event work never makes the
# trace layer unusable exactly where congestion analysis needs it
overhead=$(sed -n 's/.*"noc_trace_overhead": \([0-9.]*\).*/\1/p' BENCH_noc.json | head -1)
awk -v o="$overhead" 'BEGIN { exit !(o > 0 && o <= 3.0) }' \
  || { echo "noc_trace_overhead outside (0, 3.0] (got ${overhead:-missing})"; exit 1; }

echo "==> congestion-spotter smoke (dense_burst16 must show blocked lanes)"
cargo test --release -p neuromap-bench --test spotter_smoke -q

echo "==> golden Perfetto trace (small workload, byte-for-byte)"
cargo test --release --test noc_trace -q

echo "==> NoC differential proptests incl. VC corpus (high case count)"
# covers the vc_count {1,2,4} x depth 1-4 x mesh/torus grid, the golden
# pre-VC digests, and the deterministic torus deadlock regression
NEUROMAP_PROPTEST_CASES=256 cargo test --release --test noc_properties -q

echo "==> hierarchical-fabric proptests (1-chip byte identity + multi-chip VC safety)"
NEUROMAP_PROPTEST_CASES=256 cargo test --release --test hier_properties -q

echo "==> eval/decode equivalence + determinism proptests (high case count)"
NEUROMAP_PROPTEST_CASES=256 cargo test --release \
  --test eval_properties --test determinism --test partition_properties -q

echo "==> multilevel coarsen/project/refine proptests (high case count)"
# projection feasibility, the never-worse guard, thread byte-identity,
# and the clustered matches-or-beats-flat-PSO corpus
NEUROMAP_PROPTEST_CASES=256 cargo test --release --test multilevel_properties -q

echo "==> placement/identity-golden + joint-loop proptests (high case count)"
NEUROMAP_PROPTEST_CASES=256 cargo test --release \
  --test placement_properties --test coopt_properties -q

echo "==> repro_placement smoke (staged vs joint vs joint+trees rows present)"
# quick scale; the joint+trees rows exercise Steiner multicast routing
# through the full pipeline on all three fabrics (mesh, torus, hier)
repro=$(cargo run --release -q -p neuromap-bench --bin repro_placement)
for label in "| identity " "| staged " "| joint " "| joint+trees " "| hier "; do
  grep -qF "$label" <<<"$repro" \
    || { echo "repro_placement lost row: $label"; exit 1; }
done

echo "verify: OK"
