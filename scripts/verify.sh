#!/usr/bin/env bash
# Tier-1 verification plus the lint/bench gates added with the eval-engine
# PR. Everything runs offline (all dependencies are vendored in ./vendor).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release

echo "==> tests (workspace)"
cargo test --workspace -q

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (1 sample)"
NEUROMAP_BENCH_FAST=1 cargo bench -p neuromap-bench --bench eval
# the noc bench also differentially gates the event engine against the
# cycle-driven oracle before timing anything
NEUROMAP_BENCH_FAST=1 cargo bench -p neuromap-bench --bench noc

echo "==> NoC differential proptests (high case count)"
NEUROMAP_PROPTEST_CASES=256 cargo test --release --test noc_properties -q

echo "verify: OK"
