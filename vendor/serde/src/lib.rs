//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde: the [`Serialize`]/[`Deserialize`] traits are defined
//! directly over a JSON-shaped [`Value`] tree instead of the full
//! serializer/deserializer abstraction (the only consumer in this
//! workspace is the vendored `serde_json`). The derive macros are
//! re-exported from the vendored `serde_derive` and support named-field
//! structs, tuple structs, and enums with unit/tuple/struct variants,
//! plus the `#[serde(deny_unknown_fields)]` and `#[serde(default)]` /
//! `#[serde(default = "path")]` attributes used in this workspace.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{DeError, Number, Value};

/// Types convertible into a JSON-shaped [`Value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a JSON-shaped [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// [`DeError`] describing the first shape mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(7u32).to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn type_mismatch_is_error() {
        assert!(u32::from_value(&Value::Bool(true)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u8::from_value(&300u32.to_value()).is_err());
    }
}
