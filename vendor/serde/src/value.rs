//! The JSON-shaped value tree shared by the vendored serde and serde_json.

use std::fmt;

/// A JSON number, kept in its natural representation so integer
/// round-trips are exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

/// A JSON document. Objects preserve insertion order (a `Vec` of pairs) so
/// serialized output is deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered key → value pairs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) if *n >= 0 => Some(*n as u64),
            Value::Number(Number::F64(f))
                if *f >= 0.0 && f.fract() == 0.0 && *f <= 2f64.powi(53) =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F64(f)) if f.fract() == 0.0 && f.abs() <= 2f64.powi(53) => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an object slice, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short name of the JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable description of the first shape
/// mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// "expected X, found Y" convenience constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}
