//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of the `rand` 0.8 API it uses:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 core of upstream `StdRng`, so absolute
//! stream values differ from upstream, but every property the workspace
//! relies on holds: deterministic for a fixed seed, portable across
//! platforms and thread counts, uniform output, and independent streams
//! for seeds derived from a master stream.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from `seed`. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the counterpart of `rand::distributions::Standard`).
pub trait SampleStandard: Sized {
    /// Draws one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl SampleStandard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl SampleStandard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from. Generic over the
/// output type (like upstream `rand`) so the expected result type guides
/// integer/float literal inference inside the range expression.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias worth caring about
/// for simulation workloads (widening-multiply method).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span == 1 << 64 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_range!(f32, f64);

/// The user-facing generator interface: a subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        <f64 as SampleStandard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17u32);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f32);
            assert!((-2.0..3.0).contains(&f));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniform_mean_sane() {
        let mut rng = StdRng::seed_from_u64(6);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean={mean}");
    }
}
