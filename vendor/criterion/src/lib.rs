//! Offline, API-compatible subset of `criterion`.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. The
//! measurement loop is deliberately simple (calibrated batching, median of
//! `sample_size` samples, no outlier statistics or plots); results print
//! one line per benchmark and are queryable via [`Criterion::summaries`]
//! so benches can export machine-readable JSON.
//!
//! Environment knobs:
//!
//! * `NEUROMAP_BENCH_FAST=1` — smoke mode: 1 sample, 1 iteration per
//!   bench (CI gate that benches still run);
//! * `NEUROMAP_BENCH_TIME_MS` — target measurement time per sample
//!   (default 50 ms).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Full benchmark id (`group/param` or plain function name).
    pub id: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Per-iteration times of each sample, nanoseconds.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, running enough iterations per sample to smooth
    /// scheduler noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up + calibration: how many iterations fit the time budget?
        let calib_start = Instant::now();
        black_box(routine());
        let once = calib_start.elapsed();
        if self.iters_per_sample == 0 {
            let target = target_sample_time();
            let est = once.max(Duration::from_nanos(20));
            self.iters_per_sample = (target.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
        }
        self.sample_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_ns
                .push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

fn fast_mode() -> bool {
    std::env::var("NEUROMAP_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn target_sample_time() -> Duration {
    let ms = std::env::var("NEUROMAP_BENCH_TIME_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50u64);
    Duration::from_millis(ms)
}

/// The benchmark driver.
pub struct Criterion {
    default_samples: usize,
    summaries: Vec<Summary>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: if fast_mode() { 1 } else { 10 },
            summaries: Vec::new(),
        }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (CLI args are ignored offline).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into().id;
        let samples = self.default_samples;
        self.run_one(id, samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            criterion: self,
        }
    }

    /// All measurements recorded so far (for JSON export by benches).
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, samples: usize, mut f: F) {
        let mut b = Bencher {
            iters_per_sample: if fast_mode() { 1 } else { 0 },
            samples,
            sample_ns: Vec::new(),
        };
        f(&mut b);
        if b.sample_ns.is_empty() {
            return; // closure never called iter()
        }
        let mut sorted = b.sample_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let median_ns = sorted[sorted.len() / 2];
        let mean_ns = b.sample_ns.iter().sum::<f64>() / b.sample_ns.len() as f64;
        println!(
            "bench {id:<48} median {:>12} mean {:>12}  ({} iters x {} samples)",
            format_ns(median_ns),
            format_ns(mean_ns),
            b.iters_per_sample,
            b.sample_ns.len(),
        );
        self.summaries.push(Summary {
            id,
            median_ns,
            mean_ns,
            iters_per_sample: b.iters_per_sample,
            samples: b.sample_ns.len(),
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.samples;
        self.criterion.run_one(full, samples, f);
        self
    }

    /// Benchmarks a function with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_summary() {
        std::env::set_var("NEUROMAP_BENCH_FAST", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2)
            .bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| x * 2)
            });
        g.finish();
        assert_eq!(c.summaries().len(), 2);
        assert_eq!(c.summaries()[0].id, "noop");
        assert_eq!(c.summaries()[1].id, "grp/7");
        assert!(c.summaries().iter().all(|s| s.median_ns >= 0.0));
    }
}
