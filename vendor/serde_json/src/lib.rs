//! Offline JSON front-end for the vendored serde stub: [`to_string`],
//! [`to_string_pretty`], and [`from_str`] over `serde::Value`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// upstream `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for the vendored data model (see [`to_string`]).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ---------------- printer ----------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
            write_string(out, &pairs[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &pairs[i].1, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // keep floats recognizably floaty for round-trips
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------- parser ----------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.keyword("null", Value::Null),
            b't' => self.keyword("true", Value::Bool(true)),
            b'f' => self.keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // re-decode UTF-8 starting at this byte
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>(r#""a\nb""#).unwrap(), "a\nb");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_has_indentation() {
        let s = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("true").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        assert_eq!(from_str::<String>(r#""Aπ""#).unwrap(), "Aπ");
        let s = to_string(&"q\"uo\\te".to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), "q\"uo\\te");
    }
}
