//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest API its tests use: the [`Strategy`] trait
//! over ranges/tuples/`Just`/`any`, [`collection::vec`], the `proptest!`
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for size:
//!
//! * **no shrinking** — a failing case reports its inputs (via `Debug`
//!   formatting of the failure message) and the deterministic case seed;
//! * `prop_assume!` skips the case instead of drawing a replacement;
//! * generation is driven by the vendored deterministic `rand` stub, so
//!   failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::Rng as _;
use rand::RngCore;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run-loop configuration (`cases` = generated inputs per test).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi { lo } else { rng.gen_range(lo..=hi) }
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                // closed interval: scale a half-open draw; hi is reachable
                // through rounding, which is all the tests need
                lo + (hi - lo) * rng.gen_range(0.0..=1.0f64) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

impl Strategy for core::ops::RangeInclusive<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (*self.start() as u32, *self.end() as u32);
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(lo..=hi)) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical full-range strategy (the subset of
/// `proptest::arbitrary::Arbitrary` the workspace uses).
pub trait ArbitraryValue: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Result type property-test bodies produce (`Err` carries the failure
/// message).
pub type TestCaseResult = Result<(), String>;

/// Like `assert!` but usable inside `proptest!` bodies: returns an error
/// instead of panicking so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} == {:?}: {}", a, b, ::std::format!($($fmt)*)
        );
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Upstream proptest redraws; the vendored stub just skips.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Deterministic per-test stream: hash of the test name, so adding tests
/// doesn't shift other tests' cases.
#[doc(hidden)]
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn name(pat in strategy, ...)` block
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::test_seed(stringify!($name));
            for case in 0..config.cases {
                let mut rng: $crate::TestRng = <$crate::TestRng as ::rand::SeedableRng>
                    ::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                if let Err(msg) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}: {msg}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(
            (a, b) in (0u32..5, 10u32..20),
            v in crate::collection::vec(0u32..100, 2..6),
        ) {
            prop_assert!(a < 5 && (10..20).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn flat_map_dependent(v in (2u32..10).prop_flat_map(|n| {
            crate::collection::vec(0..n, n as usize)
        })) {
            let max = *v.iter().max().unwrap();
            prop_assert!(max < v.len() as u32);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = <TestRng as ::rand::SeedableRng>::seed_from_u64(crate::test_seed("t"));
        let mut b = <TestRng as ::rand::SeedableRng>::seed_from_u64(crate::test_seed("t"));
        let s = crate::collection::vec(0u32..1000, 5..9);
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u32..4) {
                prop_assert!(x < 2, "x={x}");
            }
        }
        inner();
    }
}
