//! Derive macros for the vendored serde stub.
//!
//! Hand-rolled over `proc_macro::TokenStream` (the offline build has no
//! `syn`/`quote`). Supports the shapes this workspace uses:
//!
//! * named-field structs, tuple structs, unit structs;
//! * enums with unit, tuple, and struct variants;
//! * `#[serde(deny_unknown_fields)]` on containers;
//! * `#[serde(default)]` / `#[serde(default = "path")]` on named fields;
//! * `#[serde(skip_serializing_if = "path")]` on named fields (the field
//!   is omitted from the serialized object when `path(&field)` is true —
//!   pair it with `default` so the omission round-trips).
//!
//! Generics are intentionally unsupported (none of the workspace types
//! need them); deriving on a generic type is a compile-time panic with a
//! clear message rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------- item model ----------------

struct Item {
    name: String,
    shape: Shape,
    deny_unknown: bool,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: Option<FieldDefault>,
    skip_serializing_if: Option<String>,
}

enum FieldDefault {
    Trait,
    Path(String),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------- parsing ----------------

/// Serde attributes found on one syntactic element.
#[derive(Default)]
struct SerdeAttrs {
    deny_unknown: bool,
    default: Option<FieldDefault>,
    skip_serializing_if: Option<String>,
}

/// Consumes leading `#[...]` attributes from `toks[*pos..]`, collecting
/// serde attributes.
fn take_attrs(toks: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    while *pos + 1 < toks.len() {
        let TokenTree::Punct(p) = &toks[*pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &toks[*pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        parse_attr_body(&g.stream().into_iter().collect::<Vec<_>>(), &mut out);
        *pos += 2;
    }
    out
}

/// Interprets the tokens inside one `#[...]`; records serde attributes.
fn parse_attr_body(body: &[TokenTree], out: &mut SerdeAttrs) {
    let [TokenTree::Ident(name), rest @ ..] = body else {
        return;
    };
    if name.to_string() != "serde" {
        return; // doc comments, non_exhaustive, derive, ...
    }
    let [TokenTree::Group(g)] = rest else {
        panic!("unsupported #[serde ...] attribute shape");
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "deny_unknown_fields" => {
                    out.deny_unknown = true;
                    i += 1;
                }
                "default" => {
                    if let Some(TokenTree::Punct(eq)) = inner.get(i + 1) {
                        if eq.as_char() == '=' {
                            let TokenTree::Literal(lit) = &inner[i + 2] else {
                                panic!("#[serde(default = ...)] expects a string literal");
                            };
                            let s = lit.to_string();
                            let path = s.trim_matches('"').to_string();
                            out.default = Some(FieldDefault::Path(path));
                            i += 3;
                            continue;
                        }
                    }
                    out.default = Some(FieldDefault::Trait);
                    i += 1;
                }
                "skip_serializing_if" => {
                    let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (inner.get(i + 1), inner.get(i + 2))
                    else {
                        panic!("#[serde(skip_serializing_if = ...)] expects a string literal");
                    };
                    assert_eq!(
                        eq.as_char(),
                        '=',
                        "skip_serializing_if expects `= \"path\"`"
                    );
                    out.skip_serializing_if = Some(lit.to_string().trim_matches('"').to_string());
                    i += 3;
                }
                other => panic!("unsupported serde attribute `{other}` (vendored stub)"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("unsupported serde attribute token `{other}`"),
        }
    }
}

/// Skips `pub` / `pub(...)` visibility at `toks[*pos..]`.
fn skip_vis(toks: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let container_attrs = take_attrs(&toks, &mut pos);
    skip_vis(&toks, &mut pos);

    let kw = match &toks[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    pos += 1;
    let name = match &toks[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found `{other}`"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(pos) {
        if p.as_char() == '<' {
            panic!("derive on generic type `{name}` is unsupported by the vendored serde stub");
        }
    }

    let shape = match kw.as_str() {
        "struct" => match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_commas_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("malformed enum body: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };

    Item {
        name,
        shape,
        deny_unknown: container_attrs.deny_unknown,
    }
}

/// Parses `name: Type, ...` named fields, keeping names and serde attrs.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < toks.len() {
        let attrs = take_attrs(&toks, &mut pos);
        skip_vis(&toks, &mut pos);
        let TokenTree::Ident(id) = &toks[pos] else {
            panic!("expected field name, found `{}`", toks[pos]);
        };
        let fname = id.to_string();
        pos += 1;
        match &toks[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{fname}`, found `{other}`"),
        }
        skip_type(&toks, &mut pos);
        fields.push(Field {
            name: fname,
            default: attrs.default,
            skip_serializing_if: attrs.skip_serializing_if,
        });
    }
    fields
}

/// Advances past one type, stopping after the `,` that ends the field (or
/// at end of stream). Tracks `<`/`>` nesting so commas inside generics
/// don't terminate the field.
fn skip_type(toks: &[TokenTree], pos: &mut usize) {
    let mut angle: i32 = 0;
    while *pos < toks.len() {
        if let TokenTree::Punct(p) = &toks[*pos] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts fields of a tuple struct / tuple variant (top-level commas at
/// angle-depth zero, ignoring a trailing comma).
fn count_top_level_commas_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle: i32 = 0;
    for (i, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 && i + 1 < toks.len() => fields += 1,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < toks.len() {
        let _attrs = take_attrs(&toks, &mut pos);
        let TokenTree::Ident(id) = &toks[pos] else {
            panic!("expected variant name, found `{}`", toks[pos]);
        };
        let vname = id.to_string();
        pos += 1;
        let kind = match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_top_level_commas_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(
                    parse_named_fields(g.stream())
                        .into_iter()
                        .map(|f| f.name)
                        .collect(),
                )
            }
            _ => VariantKind::Unit,
        };
        // skip a trailing `,` (and reject `= discriminant`, unsupported)
        if let Some(TokenTree::Punct(p)) = toks.get(pos) {
            match p.as_char() {
                ',' => pos += 1,
                '=' => panic!("enum discriminants are unsupported by the vendored serde stub"),
                other => panic!("unexpected `{other}` after variant `{vname}`"),
            }
        }
        variants.push(Variant { name: vname, kind });
    }
    variants
}

// ---------------- codegen ----------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) if fields.iter().any(|f| f.skip_serializing_if.is_some()) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    let push = format!(
                        "fields.push((::std::string::String::from(\"{0}\"), \
                             ::serde::Serialize::to_value(&self.{0})));",
                        f.name
                    );
                    match &f.skip_serializing_if {
                        Some(path) => format!("if !{path}(&self.{0}) {{ {push} }}", f.name),
                        None => push,
                    }
                })
                .collect();
            format!(
                "{{ let mut fields = ::std::vec::Vec::new(); {} \
                     ::serde::Value::Object(fields) }}",
                pushes.join(" ")
            )
        }
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    let tag = format!("::std::string::String::from(\"{vn}\")");
    match &v.kind {
        VariantKind::Unit => {
            format!("{name}::{vn} => ::serde::Value::String({tag}),")
        }
        VariantKind::Tuple(1) => format!(
            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![({tag}, \
                 ::serde::Serialize::to_value(f0))]),"
        ),
        VariantKind::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
            let vals: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                .collect();
            format!(
                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![({tag}, \
                     ::serde::Value::Array(::std::vec![{vals}]))]),",
                binds = binds.join(", "),
                vals = vals.join(", "),
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![({tag}, \
                     ::serde::Value::Object(::std::vec![{pairs}]))]),",
                pairs = pairs.join(", "),
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => de_named_struct(name, fields, item.deny_unknown),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                         Ok({name}({items})),\n\
                     other => Err(::serde::DeError::expected(\"{arity}-element array for {name}\", other)),\n\
                 }}",
                items = items.join(", "),
            )
        }
        Shape::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::Enum(variants) => de_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn de_named_struct(name: &str, fields: &[Field], deny_unknown: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "let obj = v.as_object().ok_or_else(|| \
             ::serde::DeError::expected(\"object for struct {name}\", v))?;\n"
    ));
    if deny_unknown {
        let known: Vec<String> = fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
        let pat = if known.is_empty() {
            "\"\"".to_string()
        } else {
            known.join(" | ")
        };
        out.push_str(&format!(
            "for (k, _) in obj {{ match k.as_str() {{ {pat} => {{}}, other => \
                 return Err(::serde::DeError::new(::std::format!(\
                     \"unknown field `{{other}}` in {name}\"))) }} }}\n"
        ));
    }
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            let missing = match &f.default {
                Some(FieldDefault::Trait) => "::std::default::Default::default()".to_string(),
                Some(FieldDefault::Path(p)) => format!("{p}()"),
                None => format!(
                    "return Err(::serde::DeError::new(\
                         \"missing field `{fname}` in {name}\".to_string()))"
                ),
            };
            format!(
                "{fname}: match v.get(\"{fname}\") {{ \
                     Some(x) => ::serde::Deserialize::from_value(x)?, \
                     None => {missing} }},"
            )
        })
        .collect();
    out.push_str(&format!("Ok({name} {{ {} }})", inits.join(" ")));
    out
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                )),
                VariantKind::Tuple(arity) => {
                    let items: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => match payload {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} => \
                                 Ok({name}::{vn}({items})),\n\
                             other => Err(::serde::DeError::expected(\
                                 \"{arity}-element array for {name}::{vn}\", other)),\n\
                         }},",
                        items = items.join(", "),
                    ))
                }
                VariantKind::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: match payload.get(\"{f}\") {{ \
                                     Some(x) => ::serde::Deserialize::from_value(x)?, \
                                     None => return Err(::serde::DeError::new(\
                                         \"missing field `{f}` in {name}::{vn}\".to_string())) }},"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                        inits.join(" ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match v {{\n\
             ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::DeError::new(::std::format!(\
                     \"unknown unit variant `{{other}}` of {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                 let (tag, payload) = &o[0];\n\
                 match tag.as_str() {{\n\
                     {payload_arms}\n\
                     other => Err(::serde::DeError::new(::std::format!(\
                         \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
             }},\n\
             other => Err(::serde::DeError::expected(\"variant of {name}\", other)),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        payload_arms = payload_arms.join("\n"),
    )
}
