//! # neuromap — mapping local and global synapses on spiking neuromorphic hardware
//!
//! A full Rust reproduction of Das et al., *"Mapping of Local and Global
//! Synapses on Spiking Neuromorphic Hardware"* (DATE 2018), including every
//! substrate the paper depends on:
//!
//! * [`snn`] — a CARLsim-class spiking-neural-network simulator
//!   (Izhikevich/LIF/adaptive-LIF neurons, STDP, Poisson sources, rate and
//!   temporal coding);
//! * [`hw`] — the hardware model (crossbars, CxQuad/TrueNorth-class
//!   architectures, AER protocol, JSON-loadable energy model);
//! * [`noc`] — a Noxim++-class interconnect simulator — an event-driven
//!   engine differentially verified against a cycle-accurate oracle
//!   (mesh/tree/torus/star, multicast, spike-disorder and ISI-distortion
//!   metrics);
//! * [`core`] — the paper's contribution: binary-PSO partitioning of an SNN
//!   into local and global synapses, baselines (PACMAN, NEUTRAMS, random,
//!   SA, GA), the end-to-end pipeline and the design-space explorations;
//! * [`apps`] — the evaluation workloads of Table I plus the synthetic
//!   m×n topologies.
//!
//! ## End-to-end example
//!
//! ```
//! use neuromap::apps::{synthetic::Synthetic, App};
//! use neuromap::core::baselines::PacmanPartitioner;
//! use neuromap::core::pso::{PsoConfig, PsoPartitioner};
//! use neuromap::core::{run_pipeline, PipelineConfig};
//! use neuromap::hw::arch::{Architecture, InterconnectKind};
//!
//! # fn main() -> Result<(), neuromap::core::CoreError> {
//! // 1. simulate a small synthetic SNN and extract its spike graph
//! let app = Synthetic { steps: 200, ..Synthetic::new(2, 24) };
//! let graph = app.spike_graph(7)?;
//!
//! // 2. map it on a 4-crossbar chip with a NoC-tree (CxQuad-style)
//! let arch = Architecture::custom(4, 16, InterconnectKind::Tree { arity: 4 })?;
//! let cfg = PipelineConfig::for_arch(arch);
//!
//! // 3. PSO against the PACMAN baseline
//! let pso = PsoPartitioner::new(PsoConfig { swarm_size: 20, iterations: 20, ..PsoConfig::default() });
//! let r_pso = run_pipeline(&graph, &pso, &cfg)?;
//! let r_pacman = run_pipeline(&graph, &PacmanPartitioner::new(), &cfg)?;
//! assert!(r_pso.cut_spikes <= r_pacman.cut_spikes);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use neuromap_apps as apps;
pub use neuromap_core as core;
pub use neuromap_hw as hw;
pub use neuromap_noc as noc;
pub use neuromap_snn as snn;
