//! Helpers shared by the property-test suites.

/// Per-test proptest case count, overridable via `NEUROMAP_PROPTEST_CASES`
/// so CI can run a deeper pass over the same corpus without editing the
/// tests. `scripts/verify.sh` and the workflow run 256-case passes over
/// the differential suites; a plain `cargo test` uses each suite's
/// (cheaper) default.
pub fn cases(default: u32) -> u32 {
    std::env::var("NEUROMAP_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
