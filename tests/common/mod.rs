//! Helpers shared by the property-test suites.

/// Per-test proptest case count, overridable via `NEUROMAP_PROPTEST_CASES`
/// so CI can run a deeper pass over the same corpus without editing the
/// tests. `scripts/verify.sh` and the workflow run 256-case passes over
/// the differential suites; a plain `cargo test` uses each suite's
/// (cheaper) default.
///
/// # Panics
///
/// Panics when the variable is set but not a `u32` — a typo'd CI value
/// must fail the run loudly, not silently fall back to the small default
/// case count.
pub fn cases(default: u32) -> u32 {
    match std::env::var("NEUROMAP_PROPTEST_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("NEUROMAP_PROPTEST_CASES must be a u32, got {v:?}: {e}")),
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("NEUROMAP_PROPTEST_CASES is not valid unicode: {e}"),
    }
}
