//! Property-based tests over the interconnect simulator.
//!
//! Two layers:
//!
//! * **Differential verification** — the event-driven engine
//!   ([`NocSim`]) must produce *byte-identical* statistics and delivery
//!   logs to the cycle-driven oracle ([`CycleSim`]) across randomized
//!   topologies, FIFO depths, packet sizes, arbitration policies,
//!   multicast fan-outs, bursty/backpressured traffic, and cycle-budget
//!   errors. This corpus is the correctness story for the event engine:
//!   any divergence in timing, arbitration order, credit accounting, or
//!   budget handling shows up here as a non-equal stats digest or log.
//! * **Conservation/sanity properties** — every flow delivered exactly
//!   once per destination, latency bounded below by hop count, energy
//!   counters consistent, input-permutation invariance.
//!
//! `NEUROMAP_PROPTEST_CASES` overrides the per-test case count (CI runs a
//! higher-case pass over this suite; see `.github/workflows/ci.yml`).

use neuromap::hw::energy::EnergyModel;
use neuromap::noc::config::NocConfig;
use neuromap::noc::router::Arbitration;
use neuromap::noc::sim::oracle::CycleSim;
use neuromap::noc::sim::NocSim;
use neuromap::noc::stats::{Delivery, NocStats};
use neuromap::noc::topology::{Mesh2D, NocTree, PointToPoint, Star, Topology, Torus};
use neuromap::noc::traffic::SpikeFlow;
use neuromap::noc::NocError;
use proptest::prelude::*;

mod common;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CROSSBARS: u32 = 8;

fn arb_flows(max_flows: usize) -> impl Strategy<Value = Vec<SpikeFlow>> {
    proptest::collection::vec(
        (
            0u32..1000,      // source neuron
            0u32..CROSSBARS, // src crossbar
            proptest::collection::vec(0u32..CROSSBARS, 1..4),
            0u32..6, // send step
        ),
        0..max_flows,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(neuron, src, dsts, step)| SpikeFlow::multicast(neuron, src, dsts, step))
            .collect()
    })
}

/// Hotspot traffic: many sources, one destination crossbar — the shape
/// that drives credit backpressure and round-robin contention hardest.
fn arb_hotspot(max_flows: usize) -> impl Strategy<Value = Vec<SpikeFlow>> {
    proptest::collection::vec(
        (
            0u32..1000,      // source neuron
            1u32..CROSSBARS, // src crossbar (never the hotspot)
            0u32..3,         // send step: tight bursts
        ),
        1..max_flows,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(neuron, src, step)| SpikeFlow::unicast(neuron, src, 0, step))
            .collect()
    })
}

fn topologies() -> Vec<Box<dyn Topology>> {
    vec![
        Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
        Box::new(Torus::for_crossbars(CROSSBARS as usize)),
        Box::new(NocTree::new(CROSSBARS as usize, 4)),
        Box::new(NocTree::new(CROSSBARS as usize, 2)),
        Box::new(Star::new(CROSSBARS as usize)),
        Box::new(PointToPoint::new(CROSSBARS as usize)),
    ]
}

fn topology(idx: usize) -> Box<dyn Topology> {
    topologies().swap_remove(idx % 6)
}

const ARBS: [Arbitration; 3] = [
    Arbitration::RoundRobin,
    Arbitration::OldestFirst,
    Arbitration::FixedPriority,
];

/// Runs both engines and asserts byte-identical outcomes (stats *and*
/// delivery logs on success, the exact error on failure).
fn assert_engines_agree(
    topo_idx: usize,
    cfg: NocConfig,
    flows: &[SpikeFlow],
    duration: u32,
) -> Result<(), String> {
    let mut event = NocSim::new(topology(topo_idx), cfg, EnergyModel::default());
    let mut oracle = CycleSim::new(topology(topo_idx), cfg, EnergyModel::default());
    let name = event.topology().name();
    let ev: Result<(NocStats, Vec<Delivery>), NocError> = event.run_with_duration(flows, duration);
    let or = oracle.run_with_duration(flows, duration);
    match (ev, or) {
        (Ok((es, ed)), Ok((os, od))) => {
            prop_assert_eq!(&ed, &od, "{}: delivery logs diverge", &name);
            // byte-identical: compare the serialized form, not just the
            // (float-tolerant-looking) PartialEq
            let ej = serde_json::to_string(&es).expect("stats serialize");
            let oj = serde_json::to_string(&os).expect("stats serialize");
            prop_assert_eq!(&ej, &oj, "{}: stats bytes diverge", &name);
            prop_assert_eq!(es.digest(), os.digest(), "{}: digests diverge", &name);
        }
        (Err(ee), Err(oe)) => {
            prop_assert_eq!(&ee, &oe, "{}: errors diverge", &name);
        }
        (ev, or) => {
            return Err(format!(
                "{name}: one engine failed, the other did not: event={ev:?} oracle={or:?}"
            ));
        }
    }
    Ok(())
}

/// Deterministic Fisher–Yates permutation of `flows`.
fn shuffled(flows: &[SpikeFlow], seed: u64) -> Vec<SpikeFlow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = flows.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(24)))]

    #[test]
    fn event_engine_matches_cycle_oracle(
        flows in arb_flows(60),
        topo_idx in 0usize..6,
        depth in 1usize..6,
        flits in 1u32..4,
        router_delay in 0u32..3,
        (arb_idx, multicast) in (0usize..3, any::<bool>()),
    ) {
        let cfg = NocConfig {
            buffer_depth: depth,
            flits_per_packet: flits,
            router_delay,
            arbitration: ARBS[arb_idx],
            multicast,
            ..NocConfig::default()
        };
        assert_engines_agree(topo_idx, cfg, &flows, 8)?;
    }

    #[test]
    fn engines_agree_under_backpressure(
        flows in arb_hotspot(120),
        topo_idx in 0usize..6,
        multicast in any::<bool>(),
    ) {
        // single-entry FIFOs: every hop stalls on credits, the regime
        // where the event engine's wake list is hardest to get right
        let cfg = NocConfig {
            buffer_depth: 1,
            multicast,
            ..NocConfig::default()
        };
        assert_engines_agree(topo_idx, cfg, &flows, 4)?;
    }

    #[test]
    fn engines_agree_on_cycle_budget_errors(
        flows in arb_hotspot(150),
        topo_idx in 0usize..6,
        budget in 1u64..300,
    ) {
        // tight budgets turn heavy hotspot traffic into
        // CycleBudgetExhausted; both engines must fail identically (same
        // budget, same in-flight count) or succeed identically
        let cfg = NocConfig {
            buffer_depth: 1,
            max_cycles: budget,
            ..NocConfig::default()
        };
        assert_engines_agree(topo_idx, cfg, &flows, 4)?;
    }

    #[test]
    fn input_permutation_does_not_change_results(
        flows in arb_flows(60),
        topo_idx in 0usize..6,
        shuffle_seed in any::<u64>(),
        congested in any::<bool>(),
    ) {
        // the canonical AER sort must fully determine the injection
        // schedule: feeding the flows in any order yields bit-identical
        // statistics and delivery logs, with and without credit stalls
        let cfg = NocConfig {
            buffer_depth: if congested { 1 } else { 4 },
            ..NocConfig::default()
        };
        let permuted = shuffled(&flows, shuffle_seed);
        let mut a = NocSim::new(topology(topo_idx), cfg, EnergyModel::default());
        let mut b = NocSim::new(topology(topo_idx), cfg, EnergyModel::default());
        let (sa, da) = a.run_with_duration(&flows, 8).expect("drains");
        let (sb, db) = b.run_with_duration(&permuted, 8).expect("drains");
        prop_assert_eq!(da, db, "delivery logs depend on input order");
        prop_assert_eq!(sa.digest(), sb.digest(), "stats depend on input order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(32)))]

    #[test]
    fn every_flow_is_delivered_exactly_once_per_destination(
        flows in arb_flows(60),
        multicast in any::<bool>(),
    ) {
        let expected: u64 = flows
            .iter()
            .map(|f| f.dst_crossbars.iter().filter(|&&d| d != f.src_crossbar).count() as u64
                + f.dst_crossbars.iter().filter(|&&d| d == f.src_crossbar).count() as u64)
            .sum();
        for topo in topologies() {
            let name = topo.name();
            let cfg = NocConfig { multicast, ..NocConfig::default() };
            let mut sim = NocSim::new(topo, cfg, EnergyModel::default());
            let stats = sim.run(&flows).unwrap_or_else(|e| panic!("{name}: {e}"));
            prop_assert_eq!(stats.delivered, expected, "{} multicast={}", name, multicast);
        }
    }

    #[test]
    fn latency_at_least_hop_count(
        src in 0u32..CROSSBARS,
        dst in 0u32..CROSSBARS,
    ) {
        prop_assume!(src != dst);
        for topo in topologies() {
            let min_hops = topo.hops(topo.endpoint(src), topo.endpoint(dst)) as u64;
            let name = topo.name();
            let mut sim = NocSim::new(topo, NocConfig::default(), EnergyModel::default());
            let stats = sim
                .run(&[SpikeFlow::unicast(1, src, dst, 0)])
                .expect("single flow");
            prop_assert!(
                stats.max_latency_cycles >= min_hops,
                "{}: latency {} < hops {}",
                name,
                stats.max_latency_cycles,
                min_hops
            );
        }
    }

    #[test]
    fn tiny_buffers_never_lose_packets(
        flows in arb_flows(40),
        depth in 1usize..3,
    ) {
        let cfg = NocConfig { buffer_depth: depth, ..NocConfig::default() };
        let mut sim = NocSim::new(
            Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
            cfg,
            EnergyModel::default(),
        );
        let expected: u64 = flows.iter().map(|f| f.dst_crossbars.len() as u64).sum();
        let stats = sim.run(&flows).expect("drains");
        prop_assert_eq!(stats.delivered, expected);
    }

    #[test]
    fn arbitration_policies_conserve_traffic(flows in arb_flows(50)) {
        let expected: u64 = flows.iter().map(|f| f.dst_crossbars.len() as u64).sum();
        for arb in ARBS {
            let cfg = NocConfig { arbitration: arb, ..NocConfig::default() };
            let mut sim = NocSim::new(
                Box::new(NocTree::new(CROSSBARS as usize, 2)),
                cfg,
                EnergyModel::default(),
            );
            let stats = sim.run(&flows).expect("drains");
            prop_assert_eq!(stats.delivered, expected, "{:?}", arb);
        }
    }

    #[test]
    fn energy_counters_are_consistent(flows in arb_flows(40)) {
        let mut sim = NocSim::new(
            Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
            NocConfig::default(),
            EnergyModel::default(),
        );
        let stats = sim.run(&flows).expect("drains");
        let c = &stats.counters;
        prop_assert_eq!(c.deliveries, stats.delivered);
        // a packet traverses at least one router (its source) per delivery path
        if stats.delivered > 0 {
            prop_assert!(c.router_traversals >= stats.delivered);
        }
        // energy is non-negative and zero iff no traffic
        if c.packets_injected == 0 {
            prop_assert_eq!(stats.global_energy_pj, 0.0);
        } else {
            prop_assert!(stats.global_energy_pj > 0.0);
        }
    }
}
