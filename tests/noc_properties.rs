//! Property-based tests over the interconnect simulator.
//!
//! Two layers:
//!
//! * **Differential verification** — the event-driven engine
//!   ([`NocSim`]) must produce *byte-identical* statistics and delivery
//!   logs to the cycle-driven oracle ([`CycleSim`]) across randomized
//!   topologies, FIFO depths, packet sizes, arbitration policies,
//!   multicast fan-outs, bursty/backpressured traffic, and cycle-budget
//!   errors. This corpus is the correctness story for the event engine:
//!   any divergence in timing, arbitration order, credit accounting, or
//!   budget handling shows up here as a non-equal stats digest or log.
//! * **Conservation/sanity properties** — every flow delivered exactly
//!   once per destination, latency bounded below by hop count, energy
//!   counters consistent, input-permutation invariance.
//!
//! `NEUROMAP_PROPTEST_CASES` overrides the per-test case count (CI runs a
//! higher-case pass over this suite; see `.github/workflows/ci.yml`).
//!
//! The virtual-channel campaign adds three layers on top:
//!
//! * **Golden digests** — deterministic scenarios whose `vc_count = 1`
//!   stats digests are pinned to the values the pre-VC engines produced,
//!   so the VC refactor provably changed nothing at one VC (wire shape
//!   included: per-VC counters only serialize when `vc_count > 1`).
//! * **Deadlock regression** — a minimal ring torus under bursty
//!   multicast with depth-1 FIFOs provably wedges at one VC
//!   (`CycleBudgetExhausted` with zero forward progress between two
//!   budgets) and completes at two VCs, in both engines.
//! * **VC differential corpus** — `vc_count ∈ {1, 2, 4}` × FIFO depths
//!   1–4 on mesh and torus (wraparound rings of length 4, the
//!   deadlock-capable shape), multicast and unicast, byte-identical
//!   across engines, plus input-permutation bit-invariance under VC
//!   contention.

use neuromap::hw::energy::EnergyModel;
use neuromap::noc::config::NocConfig;
use neuromap::noc::router::Arbitration;
use neuromap::noc::sim::oracle::CycleSim;
use neuromap::noc::sim::NocSim;
use neuromap::noc::stats::{Delivery, NocStats};
use neuromap::noc::topology::{
    check_vc_tree_dependencies, Mesh2D, NocTree, PointToPoint, Star, Topology, Torus,
};
use neuromap::noc::traffic::SpikeFlow;
use neuromap::noc::NocError;
use proptest::prelude::*;

mod common;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CROSSBARS: u32 = 8;

fn arb_flows(max_flows: usize) -> impl Strategy<Value = Vec<SpikeFlow>> {
    proptest::collection::vec(
        (
            0u32..1000,      // source neuron
            0u32..CROSSBARS, // src crossbar
            proptest::collection::vec(0u32..CROSSBARS, 1..4),
            0u32..6, // send step
        ),
        0..max_flows,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(neuron, src, dsts, step)| SpikeFlow::multicast(neuron, src, dsts, step))
            .collect()
    })
}

/// Hotspot traffic: many sources, one destination crossbar — the shape
/// that drives credit backpressure and round-robin contention hardest.
fn arb_hotspot(max_flows: usize) -> impl Strategy<Value = Vec<SpikeFlow>> {
    proptest::collection::vec(
        (
            0u32..1000,      // source neuron
            1u32..CROSSBARS, // src crossbar (never the hotspot)
            0u32..3,         // send step: tight bursts
        ),
        1..max_flows,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(neuron, src, step)| SpikeFlow::unicast(neuron, src, 0, step))
            .collect()
    })
}

fn topologies() -> Vec<Box<dyn Topology>> {
    vec![
        Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
        Box::new(Torus::for_crossbars(CROSSBARS as usize)),
        Box::new(NocTree::new(CROSSBARS as usize, 4)),
        Box::new(NocTree::new(CROSSBARS as usize, 2)),
        Box::new(Star::new(CROSSBARS as usize)),
        Box::new(PointToPoint::new(CROSSBARS as usize)),
    ]
}

fn topology(idx: usize) -> Box<dyn Topology> {
    topologies().swap_remove(idx % 6)
}

const ARBS: [Arbitration; 3] = [
    Arbitration::RoundRobin,
    Arbitration::OldestFirst,
    Arbitration::FixedPriority,
];

/// Runs both engines and asserts byte-identical outcomes (stats *and*
/// delivery logs on success, the exact error on failure).
fn assert_engines_agree(
    topo_idx: usize,
    cfg: NocConfig,
    flows: &[SpikeFlow],
    duration: u32,
) -> Result<(), String> {
    let mut event = NocSim::new(topology(topo_idx), cfg, EnergyModel::default());
    let mut oracle = CycleSim::new(topology(topo_idx), cfg, EnergyModel::default());
    let name = event.topology().name();
    let ev: Result<(NocStats, Vec<Delivery>), NocError> = event.run_with_duration(flows, duration);
    let or = oracle.run_with_duration(flows, duration);
    match (ev, or) {
        (Ok((es, ed)), Ok((os, od))) => {
            prop_assert_eq!(&ed, &od, "{}: delivery logs diverge", &name);
            // byte-identical: compare the serialized form, not just the
            // (float-tolerant-looking) PartialEq
            let ej = serde_json::to_string(&es).expect("stats serialize");
            let oj = serde_json::to_string(&os).expect("stats serialize");
            prop_assert_eq!(&ej, &oj, "{}: stats bytes diverge", &name);
            prop_assert_eq!(
                es.digest().unwrap(),
                os.digest().unwrap(),
                "{}: digests diverge",
                &name
            );
        }
        (Err(ee), Err(oe)) => {
            prop_assert_eq!(&ee, &oe, "{}: errors diverge", &name);
        }
        (ev, or) => {
            return Err(format!(
                "{name}: one engine failed, the other did not: event={ev:?} oracle={or:?}"
            ));
        }
    }
    Ok(())
}

/// Deterministic Fisher–Yates permutation of `flows`.
fn shuffled(flows: &[SpikeFlow], seed: u64) -> Vec<SpikeFlow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = flows.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

// ---------------- virtual-channel campaign ----------------

/// Crossbar count of the VC corpus: a 4×4 torus has wraparound rings of
/// length 4, the minimal shape whose channel-dependency graph is cyclic
/// at one VC (rings of length 3 never take two same-direction hops).
const VC_CROSSBARS: u32 = 16;

fn vc_topology(mesh: bool) -> Box<dyn Topology> {
    if mesh {
        Box::new(Mesh2D::for_crossbars(VC_CROSSBARS as usize))
    } else {
        Box::new(Torus::for_crossbars(VC_CROSSBARS as usize))
    }
}

fn arb_vc_flows(max_flows: usize) -> impl Strategy<Value = Vec<SpikeFlow>> {
    proptest::collection::vec(
        (
            0u32..1000,
            0u32..VC_CROSSBARS,
            proptest::collection::vec(0u32..VC_CROSSBARS, 1..5),
            0u32..4,
        ),
        0..max_flows,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(neuron, src, dsts, step)| SpikeFlow::multicast(neuron, src, dsts, step))
            .collect()
    })
}

/// Like [`assert_engines_agree`], but over an explicit topology builder
/// (the VC corpus pins mesh/torus instead of indexing the shared list).
fn assert_engines_agree_on(
    topo: impl Fn() -> Box<dyn Topology>,
    cfg: NocConfig,
    flows: &[SpikeFlow],
    duration: u32,
) -> Result<(), String> {
    let mut event = NocSim::new(topo(), cfg, EnergyModel::default());
    let mut oracle = CycleSim::new(topo(), cfg, EnergyModel::default());
    let name = format!("{} vc={}", event.topology().name(), cfg.vc_count);
    let ev = event.run_with_duration(flows, duration);
    let or = oracle.run_with_duration(flows, duration);
    match (ev, or) {
        (Ok((es, ed)), Ok((os, od))) => {
            prop_assert_eq!(&ed, &od, "{}: delivery logs diverge", &name);
            let ej = serde_json::to_string(&es).expect("stats serialize");
            let oj = serde_json::to_string(&os).expect("stats serialize");
            prop_assert_eq!(&ej, &oj, "{}: stats bytes diverge", &name);
            prop_assert_eq!(
                es.digest().unwrap(),
                os.digest().unwrap(),
                "{}: digests diverge",
                &name
            );
            prop_assert_eq!(
                es.per_vc.len(),
                if cfg.vc_count > 1 { cfg.vc_count } else { 0 },
                "{}: per-VC counters sized wrong",
                &name
            );
        }
        (Err(ee), Err(oe)) => {
            prop_assert_eq!(&ee, &oe, "{}: errors diverge", &name);
        }
        (ev, or) => {
            return Err(format!(
                "{name}: one engine failed, the other did not: event={ev:?} oracle={or:?}"
            ));
        }
    }
    Ok(())
}

/// The minimal deterministic wedge: every ring node multicasts past its
/// neighbor through the wraparound, depth-1 FIFOs, bursty steps.
fn ring_deadlock_flows() -> Vec<SpikeFlow> {
    let mut flows = Vec::new();
    for step in 0..2u32 {
        for i in 0..4u32 {
            flows.push(SpikeFlow::multicast(
                i * 10 + step,
                i,
                vec![(i + 1) % 4, (i + 2) % 4],
                step,
            ));
        }
    }
    flows
}

fn ring_deadlock_cfg(vc_count: usize, max_cycles: u64) -> NocConfig {
    NocConfig {
        buffer_depth: 1,
        vc_count,
        max_cycles,
        ..NocConfig::default()
    }
}

#[test]
fn torus_deadlock_wedges_without_vcs_and_completes_with_two() {
    let ring = || -> Box<dyn Topology> { Box::new(Torus::grid(4, 1, 4)) };
    let flows = ring_deadlock_flows();

    // one VC: both engines exhaust the cycle budget identically
    let run = |vc: usize, budget: u64| {
        let mut ev = NocSim::new(
            ring(),
            ring_deadlock_cfg(vc, budget),
            EnergyModel::default(),
        );
        let mut or = CycleSim::new(
            ring(),
            ring_deadlock_cfg(vc, budget),
            EnergyModel::default(),
        );
        (
            ev.run_with_duration(&flows, 2),
            or.run_with_duration(&flows, 2),
        )
    };
    let (ev, or) = run(1, 20_000);
    let ev_err = ev.expect_err("single-VC ring must wedge");
    let or_err = or.expect_err("single-VC ring must wedge in the oracle too");
    assert_eq!(ev_err, or_err, "engines must report the identical wedge");
    let NocError::CycleBudgetExhausted {
        budget: 20_000,
        in_flight,
    } = ev_err
    else {
        panic!("expected CycleBudgetExhausted, got {ev_err:?}");
    };
    assert!(in_flight > 0, "a wedge holds packets");

    // zero forward progress: doubling the budget frees nothing — the
    // same packets are still stuck, so this is a true deadlock, not a
    // slow drain
    let (ev2, _) = run(1, 40_000);
    let NocError::CycleBudgetExhausted {
        in_flight: in_flight2,
        ..
    } = ev2.expect_err("still wedged at twice the budget")
    else {
        panic!("expected CycleBudgetExhausted");
    };
    assert_eq!(
        in_flight, in_flight2,
        "no packet may advance in the extra budget window"
    );

    // two VCs: the dateline assignment breaks the cycle and everything
    // drains, byte-identically across engines
    let (ev, or) = run(2, 20_000);
    let (es, ed) = ev.expect("two VCs must complete");
    let (os, od) = or.expect("two VCs must complete in the oracle too");
    assert_eq!(ed, od, "delivery logs must be identical");
    assert_eq!(es.digest().unwrap(), os.digest().unwrap());
    assert_eq!(es.delivered, 16, "2 steps x 4 sources x 2 destinations");
    assert_eq!(es.per_vc.len(), 2);
    assert!(
        es.per_vc.iter().all(|v| v.forwarded > 0),
        "the wedge-breaking traffic must actually use both VCs: {:?}",
        es.per_vc
    );
}

#[test]
fn pre_vc_digests_are_stable() {
    // golden digests recorded from the pre-VC engines (PR 4 HEAD): the
    // vc_count=1 configuration must reproduce them byte-for-byte, wire
    // shape included. A digest change here means single-VC behavior (or
    // the serialized statistics shape) drifted — exactly what the VC
    // refactor promised not to do.
    let multicast_storm = |crossbars: u32, steps: u32| -> Vec<SpikeFlow> {
        let mut flows = Vec::new();
        for step in 0..steps {
            for src in 0..crossbars {
                flows.push(SpikeFlow::multicast(
                    src * 31 + step,
                    src,
                    vec![
                        (src + 1) % crossbars,
                        (src + 3) % crossbars,
                        (src + 5) % crossbars,
                    ],
                    step,
                ));
            }
        }
        flows
    };
    let hotspot = |crossbars: u32, count: u32| -> Vec<SpikeFlow> {
        (0..count)
            .map(|i| SpikeFlow::unicast(i, 1 + (i % (crossbars - 1)), 0, i % 3))
            .collect()
    };
    type GoldenCase = (
        &'static str,
        Box<dyn Topology>,
        NocConfig,
        Vec<SpikeFlow>,
        u32,
        u64,
    );
    let cases: Vec<GoldenCase> = vec![
        (
            "mesh8_default_multicast",
            Box::new(Mesh2D::for_crossbars(8)),
            NocConfig::default(),
            multicast_storm(8, 10),
            10,
            0x17fe_58cd_7cf4_7ad2,
        ),
        (
            "torus16_depth2_oldest",
            Box::new(Torus::for_crossbars(16)),
            NocConfig {
                buffer_depth: 2,
                arbitration: Arbitration::OldestFirst,
                ..NocConfig::default()
            },
            multicast_storm(16, 6),
            6,
            0x6464_aca8_5c8b_f8d7,
        ),
        (
            "tree8_depth1_fixed_hotspot",
            Box::new(NocTree::new(8, 2)),
            NocConfig {
                buffer_depth: 1,
                arbitration: Arbitration::FixedPriority,
                multicast: false,
                ..NocConfig::default()
            },
            hotspot(8, 60),
            3,
            0x9d05_0428_6cb3_4e6e,
        ),
        (
            "star8_hotspot",
            Box::new(Star::new(8)),
            NocConfig::default(),
            hotspot(8, 40),
            3,
            0x66d4_18a2_b61d_c39e,
        ),
        (
            "mesh16_flits3_delay2",
            Box::new(Mesh2D::for_crossbars(16)),
            NocConfig {
                buffer_depth: 3,
                flits_per_packet: 3,
                router_delay: 2,
                ..NocConfig::default()
            },
            multicast_storm(16, 4),
            4,
            0x0c14_bfd0_3288_a83c,
        ),
    ];
    for (name, topo, cfg, flows, duration, golden) in cases {
        assert_eq!(cfg.vc_count, 1, "{name}: goldens are single-VC");
        let topo: std::sync::Arc<dyn Topology> = std::sync::Arc::from(topo);
        let mut event = NocSim::shared(std::sync::Arc::clone(&topo), cfg, EnergyModel::default());
        let mut oracle = CycleSim::shared(topo, cfg, EnergyModel::default());
        let (es, _) = event.run_with_duration(&flows, duration).expect(name);
        let (os, _) = oracle.run_with_duration(&flows, duration).expect(name);
        assert_eq!(
            es.digest().unwrap(),
            golden,
            "{name}: event engine drifted from the pre-VC golden digest"
        );
        assert_eq!(
            os.digest().unwrap(),
            golden,
            "{name}: oracle drifted from the pre-VC golden digest"
        );
        assert!(
            es.per_vc.is_empty(),
            "{name}: single-VC stats must not carry per-VC counters"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(24)))]

    #[test]
    fn engines_agree_across_vc_configs(
        flows in arb_vc_flows(40),
        mesh in any::<bool>(),
        depth in 1usize..5,
        vc_idx in 0usize..3,
        (arb_idx, multicast) in (0usize..3, any::<bool>()),
    ) {
        // the full new configuration grid: vc {1,2,4} x depth 1..4 on
        // mesh and torus. Shallow single-VC torus points can wedge —
        // then both engines must fail with the identical budget error,
        // which the small budget keeps cheap for the cycle-walking
        // oracle.
        let cfg = NocConfig {
            buffer_depth: depth,
            vc_count: [1usize, 2, 4][vc_idx],
            arbitration: ARBS[arb_idx],
            multicast,
            max_cycles: 60_000,
            ..NocConfig::default()
        };
        assert_engines_agree_on(|| vc_topology(mesh), cfg, &flows, 6)?;
    }

    #[test]
    fn vc_input_permutation_is_bit_invariant(
        flows in arb_vc_flows(40),
        shuffle_seed in any::<u64>(),
        depth in 1usize..3,
        vc_idx in 0usize..2,
    ) {
        // the canonical AER sort must fully determine the schedule under
        // VC contention too: shallow torus FIFOs with 2 or 4 VCs, flows
        // fed in any order, bit-identical stats and delivery logs
        let cfg = NocConfig {
            buffer_depth: depth,
            vc_count: [2usize, 4][vc_idx],
            max_cycles: 60_000,
            ..NocConfig::default()
        };
        let permuted = shuffled(&flows, shuffle_seed);
        let mut a = NocSim::new(vc_topology(false), cfg, EnergyModel::default());
        let mut b = NocSim::new(vc_topology(false), cfg, EnergyModel::default());
        let ra = a.run_with_duration(&flows, 6);
        let rb = b.run_with_duration(&permuted, 6);
        match (ra, rb) {
            (Ok((sa, da)), Ok((sb, db))) => {
                prop_assert_eq!(da, db, "delivery logs depend on input order");
                prop_assert_eq!(sa.digest().unwrap(), sb.digest().unwrap(), "stats depend on input order");
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb, "errors depend on input order"),
            (ra, rb) => {
                return Err(format!(
                    "permutation changed the outcome kind: {ra:?} vs {rb:?}"
                ))
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(16)))]

    #[test]
    fn event_engine_wakes_cover_oracle_progress(
        flows in arb_vc_flows(48),
        mesh in any::<bool>(),
        depth in 1usize..5,
        vc_idx in 0usize..3,
    ) {
        // liveness of the per-port wake scheduler under dense/backpressured
        // traffic: the event engine must attend (and forward at) every
        // cycle where the cycle-walking oracle makes forward progress —
        // a missed wake shows up here as a progress cycle the event
        // engine slept through
        let cfg = NocConfig {
            buffer_depth: depth,
            vc_count: [1usize, 2, 4][vc_idx],
            max_cycles: 60_000,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(vc_topology(mesh), cfg, EnergyModel::default());
        let mut or = CycleSim::new(vc_topology(mesh), cfg, EnergyModel::default());
        let re = ev.run_traced(&flows, 6);
        let ro = or.run_traced(&flows, 6);
        match (re, ro) {
            (Ok((es, ed, et)), Ok((os, od, ot))) => {
                prop_assert_eq!(&ed, &od, "delivery logs diverge");
                prop_assert_eq!(es.digest().unwrap(), os.digest().unwrap(), "digests diverge");
                prop_assert_eq!(
                    &et.progress_cycles, &ot.progress_cycles,
                    "the engines must forward at identical cycles"
                );
                let attended: std::collections::HashSet<u64> =
                    et.attended_cycles.iter().copied().collect();
                for c in &ot.progress_cycles {
                    prop_assert!(
                        attended.contains(c),
                        "oracle progressed at cycle {} but the event engine idled",
                        c
                    );
                }
            }
            (Err(ee), Err(oe)) => prop_assert_eq!(ee, oe, "errors diverge"),
            (re, ro) => return Err(format!("outcome kinds diverge: {re:?} vs {ro:?}")),
        }
    }

    #[test]
    fn per_port_wakes_beat_the_global_sweep_bound(
        flows in arb_flows(60),
        topo_idx in 0usize..6,
    ) {
        // on the sparse corpus the per-port scheduler must examine no
        // more ports than the retired global scheme's whole-active-router
        // sweeps: legacy_sweep_lanes accumulates that scheme's per-cycle
        // (port, VC) examination count over the cycles this engine
        // attends — itself a lower bound on the legacy total, which also
        // attended cycles the per-port engine now skips
        let mut ev = NocSim::new(topology(topo_idx), NocConfig::default(), EnergyModel::default());
        if let Ok((_, _, trace)) = ev.run_traced(&flows, 8) {
            prop_assert!(
                trace.sched.port_wakes <= trace.sched.legacy_sweep_lanes,
                "per-port wakes {} exceed the legacy sweep bound {}",
                trace.sched.port_wakes,
                trace.sched.legacy_sweep_lanes
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(24)))]

    #[test]
    fn event_engine_matches_cycle_oracle(
        flows in arb_flows(60),
        topo_idx in 0usize..6,
        depth in 1usize..6,
        flits in 1u32..4,
        router_delay in 0u32..3,
        (arb_idx, multicast) in (0usize..3, any::<bool>()),
    ) {
        let cfg = NocConfig {
            buffer_depth: depth,
            flits_per_packet: flits,
            router_delay,
            arbitration: ARBS[arb_idx],
            multicast,
            ..NocConfig::default()
        };
        assert_engines_agree(topo_idx, cfg, &flows, 8)?;
    }

    #[test]
    fn engines_agree_under_backpressure(
        flows in arb_hotspot(120),
        topo_idx in 0usize..6,
        multicast in any::<bool>(),
    ) {
        // single-entry FIFOs: every hop stalls on credits, the regime
        // where the event engine's wake list is hardest to get right
        let cfg = NocConfig {
            buffer_depth: 1,
            multicast,
            ..NocConfig::default()
        };
        assert_engines_agree(topo_idx, cfg, &flows, 4)?;
    }

    #[test]
    fn engines_agree_on_cycle_budget_errors(
        flows in arb_hotspot(150),
        topo_idx in 0usize..6,
        budget in 1u64..300,
    ) {
        // tight budgets turn heavy hotspot traffic into
        // CycleBudgetExhausted; both engines must fail identically (same
        // budget, same in-flight count) or succeed identically
        let cfg = NocConfig {
            buffer_depth: 1,
            max_cycles: budget,
            ..NocConfig::default()
        };
        assert_engines_agree(topo_idx, cfg, &flows, 4)?;
    }

    #[test]
    fn input_permutation_does_not_change_results(
        flows in arb_flows(60),
        topo_idx in 0usize..6,
        shuffle_seed in any::<u64>(),
        congested in any::<bool>(),
    ) {
        // the canonical AER sort must fully determine the injection
        // schedule: feeding the flows in any order yields bit-identical
        // statistics and delivery logs, with and without credit stalls
        let cfg = NocConfig {
            buffer_depth: if congested { 1 } else { 4 },
            ..NocConfig::default()
        };
        let permuted = shuffled(&flows, shuffle_seed);
        let mut a = NocSim::new(topology(topo_idx), cfg, EnergyModel::default());
        let mut b = NocSim::new(topology(topo_idx), cfg, EnergyModel::default());
        let (sa, da) = a.run_with_duration(&flows, 8).expect("drains");
        let (sb, db) = b.run_with_duration(&permuted, 8).expect("drains");
        prop_assert_eq!(da, db, "delivery logs depend on input order");
        prop_assert_eq!(sa.digest().unwrap(), sb.digest().unwrap(), "stats depend on input order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(32)))]

    #[test]
    fn every_flow_is_delivered_exactly_once_per_destination(
        flows in arb_flows(60),
        multicast in any::<bool>(),
    ) {
        let expected: u64 = flows
            .iter()
            .map(|f| f.dst_crossbars.iter().filter(|&&d| d != f.src_crossbar).count() as u64
                + f.dst_crossbars.iter().filter(|&&d| d == f.src_crossbar).count() as u64)
            .sum();
        for topo in topologies() {
            let name = topo.name();
            let cfg = NocConfig { multicast, ..NocConfig::default() };
            let mut sim = NocSim::new(topo, cfg, EnergyModel::default());
            let stats = sim.run(&flows).unwrap_or_else(|e| panic!("{name}: {e}"));
            prop_assert_eq!(stats.delivered, expected, "{} multicast={}", name, multicast);
        }
    }

    #[test]
    fn latency_at_least_hop_count(
        src in 0u32..CROSSBARS,
        dst in 0u32..CROSSBARS,
    ) {
        prop_assume!(src != dst);
        for topo in topologies() {
            let min_hops = topo.hops(topo.endpoint(src), topo.endpoint(dst)) as u64;
            let name = topo.name();
            let mut sim = NocSim::new(topo, NocConfig::default(), EnergyModel::default());
            let stats = sim
                .run(&[SpikeFlow::unicast(1, src, dst, 0)])
                .expect("single flow");
            prop_assert!(
                stats.max_latency_cycles >= min_hops,
                "{}: latency {} < hops {}",
                name,
                stats.max_latency_cycles,
                min_hops
            );
        }
    }

    #[test]
    fn tiny_buffers_never_lose_packets(
        flows in arb_flows(40),
        depth in 1usize..3,
    ) {
        let cfg = NocConfig { buffer_depth: depth, ..NocConfig::default() };
        let mut sim = NocSim::new(
            Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
            cfg,
            EnergyModel::default(),
        );
        let expected: u64 = flows.iter().map(|f| f.dst_crossbars.len() as u64).sum();
        let stats = sim.run(&flows).expect("drains");
        prop_assert_eq!(stats.delivered, expected);
    }

    #[test]
    fn arbitration_policies_conserve_traffic(flows in arb_flows(50)) {
        let expected: u64 = flows.iter().map(|f| f.dst_crossbars.len() as u64).sum();
        for arb in ARBS {
            let cfg = NocConfig { arbitration: arb, ..NocConfig::default() };
            let mut sim = NocSim::new(
                Box::new(NocTree::new(CROSSBARS as usize, 2)),
                cfg,
                EnergyModel::default(),
            );
            let stats = sim.run(&flows).expect("drains");
            prop_assert_eq!(stats.delivered, expected, "{:?}", arb);
        }
    }

    #[test]
    fn energy_counters_are_consistent(flows in arb_flows(40)) {
        let mut sim = NocSim::new(
            Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
            NocConfig::default(),
            EnergyModel::default(),
        );
        let stats = sim.run(&flows).expect("drains");
        let c = &stats.counters;
        prop_assert_eq!(c.deliveries, stats.delivered);
        // a packet traverses at least one router (its source) per delivery path
        if stats.delivered > 0 {
            prop_assert!(c.router_traversals >= stats.delivered);
        }
        // energy is non-negative and zero iff no traffic
        if c.packets_injected == 0 {
            prop_assert_eq!(stats.global_energy_pj, 0.0);
        } else {
            prop_assert!(stats.global_energy_pj > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(16)))]

    /// Trace determinism (PR 7): with `NocConfig::trace` on, the
    /// event-driven engine and the cycle-walking oracle must emit
    /// byte-identical event streams over the VC differential corpus,
    /// and the stream must not depend on the order flows were fed in
    /// (the canonical injection schedule erases feed order). This is
    /// the third byte-identity surface after stats digests and
    /// delivery logs.
    #[test]
    fn trace_streams_are_byte_identical_across_engines(
        flows in arb_vc_flows(40),
        mesh in any::<bool>(),
        depth in 1usize..5,
        vc_idx in 0usize..3,
        shuffle_seed in any::<u64>(),
    ) {
        let cfg = NocConfig {
            buffer_depth: depth,
            vc_count: [1usize, 2, 4][vc_idx],
            max_cycles: 60_000,
            trace: true,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(vc_topology(mesh), cfg, EnergyModel::default());
        let mut or = CycleSim::new(vc_topology(mesh), cfg, EnergyModel::default());
        let re = ev.run_with_duration(&flows, 6);
        let ro = or.run_with_duration(&flows, 6);
        match (re, ro) {
            (Ok(_), Ok(_)) => {
                let et = ev.take_trace().expect("event engine recorded a trace");
                let ot = or.take_trace().expect("oracle recorded a trace");
                prop_assert_eq!(
                    et.to_bytes(), ot.to_bytes(),
                    "trace streams diverge between engines"
                );
                let mut evp = NocSim::new(vc_topology(mesh), cfg, EnergyModel::default());
                evp.run_with_duration(&shuffled(&flows, shuffle_seed), 6)
                    .expect("permuted run matches the original outcome");
                let pt = evp.take_trace().expect("permuted run recorded a trace");
                prop_assert_eq!(
                    et.to_bytes(), pt.to_bytes(),
                    "trace depends on flow feed order"
                );
            }
            (Err(ee), Err(oe)) => prop_assert_eq!(ee, oe, "errors diverge"),
            (re, ro) => return Err(format!("outcome kinds diverge: {re:?} vs {ro:?}")),
        }
    }
}

// ---------------- Steiner multicast-tree campaign (PR 8) ----------------

/// Every topology the tree campaign exercises, including the 4×4
/// deadlock-capable shapes the VC corpus pins.
fn tree_topologies() -> Vec<Box<dyn Topology>> {
    let mut all = topologies();
    all.push(vc_topology(true));
    all.push(vc_topology(false));
    all
}

/// A single-destination multicast group must ride exactly the unicast
/// route: same next-hop sequence, same per-hop VC labels. This pins the
/// degeneracy contract in [`Topology::multicast_route`]'s docs — the
/// Steiner overrides on mesh and torus may only diverge from unicast
/// routing when a group genuinely shares hops between destinations.
#[test]
fn single_dest_trees_degenerate_to_the_unicast_route() {
    for topo in tree_topologies() {
        for vcs in [1usize, 2, 4] {
            let nr = topo.num_routers();
            for src in 0..nr {
                for dst in 0..nr {
                    let mut cur = src;
                    let mut expect = Vec::new();
                    while cur != dst {
                        let vc = if vcs <= 1 {
                            0
                        } else {
                            topo.hop_vc(cur, dst, vcs)
                        };
                        let next = topo.route_next(cur, dst);
                        expect.push((next, vc));
                        cur = next;
                    }
                    let paths = topo.multicast_route(src, &[dst], vcs);
                    assert_eq!(paths.len(), 1);
                    assert_eq!(
                        paths[0],
                        expect,
                        "{}: single-dest tree {src}→{dst} at {vcs} VCs leaves the unicast route",
                        topo.name()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(24)))]

    /// Structural invariants of every tree path, over random multicast
    /// groups on the deadlock-capable 4×4 mesh and torus: paths end at
    /// their destination, never revisit a router (simple paths), only
    /// traverse real links, and label every hop with an in-range VC.
    #[test]
    fn tree_paths_are_simple_link_walks(
        mesh in any::<bool>(),
        vc_idx in 0usize..3,
        src in 0usize..16,
        dests in proptest::collection::vec(0usize..16, 1..8),
    ) {
        let topo = vc_topology(mesh);
        let vcs = [1usize, 2, 4][vc_idx];
        let paths = topo.multicast_route(src, &dests, vcs);
        prop_assert_eq!(paths.len(), dests.len());
        for (path, &d) in paths.iter().zip(dests.iter()) {
            let mut cur = src;
            let mut seen = vec![src];
            for &(next, vc) in path {
                prop_assert!(
                    topo.neighbors(cur).contains(&next),
                    "{}: tree hop {cur}→{next} is not a link", topo.name()
                );
                prop_assert!(vc < vcs, "{}: VC {vc} out of range", topo.name());
                prop_assert!(
                    !seen.contains(&next),
                    "{}: tree path to {d} revisits router {next}", topo.name()
                );
                seen.push(next);
                cur = next;
            }
            prop_assert_eq!(cur, d, "{}: tree path ends off its destination", topo.name());
        }
    }

    /// The PR-5 deadlock-freedom invariant survives tree routing: the
    /// channel-dependency graph seeded with every unicast route *plus*
    /// every tree edge of random multicast groups stays acyclic on the
    /// wraparound-capable shapes (torus needs ≥ 2 VCs for its dateline
    /// scheme, exactly as for unicast routing).
    #[test]
    fn tree_routes_keep_channel_dependencies_acyclic(
        mesh in any::<bool>(),
        vc_idx in 0usize..2,
        groups in proptest::collection::vec(
            (0usize..16, proptest::collection::vec(0usize..16, 1..8)),
            1..12,
        ),
    ) {
        let topo = vc_topology(mesh);
        // torus at 1 VC is cyclic even for unicast; check the same VC
        // counts the unicast invariant holds at
        let vcs = if mesh { [1usize, 2][vc_idx] } else { [2usize, 4][vc_idx] };
        check_vc_tree_dependencies(topo.as_ref(), vcs, &groups)
            .map_err(|e| format!("{}: {e}", topo.name()))?;
    }

    /// The full differential surface under tree routing: stats bytes,
    /// digests, delivery logs, and structured traces all byte-identical
    /// between the event engine and the cycle oracle across the VC
    /// corpus with `multicast_trees` on.
    #[test]
    fn tree_routed_engines_are_byte_identical(
        flows in arb_vc_flows(40),
        mesh in any::<bool>(),
        depth in 1usize..5,
        vc_idx in 0usize..3,
    ) {
        let cfg = NocConfig {
            buffer_depth: depth,
            vc_count: [1usize, 2, 4][vc_idx],
            multicast: true,
            multicast_trees: true,
            trace: true,
            max_cycles: 60_000,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(vc_topology(mesh), cfg, EnergyModel::default());
        let mut or = CycleSim::new(vc_topology(mesh), cfg, EnergyModel::default());
        let re = ev.run_with_duration(&flows, 6);
        let ro = or.run_with_duration(&flows, 6);
        match (re, ro) {
            (Ok((es, ed)), Ok((os, od))) => {
                prop_assert_eq!(&ed, &od, "tree routing: delivery logs diverge");
                let ej = serde_json::to_string(&es).expect("stats serialize");
                let oj = serde_json::to_string(&os).expect("stats serialize");
                prop_assert_eq!(&ej, &oj, "tree routing: stats bytes diverge");
                prop_assert_eq!(
                    es.digest().unwrap(), os.digest().unwrap(),
                    "tree routing: digests diverge"
                );
                let et = ev.take_trace().expect("event engine recorded a trace");
                let ot = or.take_trace().expect("oracle recorded a trace");
                prop_assert_eq!(
                    et.to_bytes(), ot.to_bytes(),
                    "tree routing: trace streams diverge"
                );
            }
            (Err(ee), Err(oe)) => prop_assert_eq!(ee, oe, "tree routing: errors diverge"),
            (re, ro) => return Err(format!(
                "tree routing: outcome kinds diverge: {re:?} vs {ro:?}"
            )),
        }
    }

    /// Tree routing conserves traffic: every destination of every flow is
    /// still delivered exactly once, and a tree-routed run never delivers
    /// a different multiset of (flow, destination) pairs than the
    /// branch-split unicast-route run of the same workload.
    #[test]
    fn tree_routing_conserves_deliveries(
        flows in arb_vc_flows(30),
        mesh in any::<bool>(),
        vc_idx in 0usize..3,
    ) {
        let base = NocConfig {
            vc_count: [1usize, 2, 4][vc_idx],
            multicast: true,
            max_cycles: 60_000,
            ..NocConfig::default()
        };
        let tree_cfg = NocConfig { multicast_trees: true, ..base };
        let mut a = NocSim::new(vc_topology(mesh), base, EnergyModel::default());
        let mut b = NocSim::new(vc_topology(mesh), tree_cfg, EnergyModel::default());
        let ra = a.run_with_duration(&flows, 6);
        let rb = b.run_with_duration(&flows, 6);
        if let (Ok((_, da)), Ok((_, db))) = (ra, rb) {
            let key = |d: &Delivery| (d.source_neuron, d.src_crossbar, d.dst_crossbar, d.send_step);
            let mut ka: Vec<_> = da.iter().map(key).collect();
            let mut kb: Vec<_> = db.iter().map(key).collect();
            ka.sort_unstable();
            kb.sort_unstable();
            prop_assert_eq!(ka, kb, "tree routing changes the delivered multiset");
        }
    }
}
