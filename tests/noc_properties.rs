//! Property-based tests over the interconnect simulator: conservation
//! (every flow delivered exactly once per destination), latency sanity,
//! and robustness across topologies, buffer depths, and arbitration
//! policies.

use neuromap::hw::energy::EnergyModel;
use neuromap::noc::config::NocConfig;
use neuromap::noc::router::Arbitration;
use neuromap::noc::sim::NocSim;
use neuromap::noc::topology::{Mesh2D, NocTree, PointToPoint, Star, Topology, Torus};
use neuromap::noc::traffic::SpikeFlow;
use proptest::prelude::*;

const CROSSBARS: u32 = 8;

fn arb_flows(max_flows: usize) -> impl Strategy<Value = Vec<SpikeFlow>> {
    proptest::collection::vec(
        (
            0u32..1000,      // source neuron
            0u32..CROSSBARS, // src crossbar
            proptest::collection::vec(0u32..CROSSBARS, 1..4),
            0u32..6, // send step
        ),
        0..max_flows,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(neuron, src, dsts, step)| SpikeFlow::multicast(neuron, src, dsts, step))
            .collect()
    })
}

fn topologies() -> Vec<Box<dyn Topology>> {
    vec![
        Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
        Box::new(Torus::for_crossbars(CROSSBARS as usize)),
        Box::new(NocTree::new(CROSSBARS as usize, 4)),
        Box::new(NocTree::new(CROSSBARS as usize, 2)),
        Box::new(Star::new(CROSSBARS as usize)),
        Box::new(PointToPoint::new(CROSSBARS as usize)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_flow_is_delivered_exactly_once_per_destination(
        flows in arb_flows(60),
        multicast in any::<bool>(),
    ) {
        let expected: u64 = flows
            .iter()
            .map(|f| f.dst_crossbars.iter().filter(|&&d| d != f.src_crossbar).count() as u64
                + f.dst_crossbars.iter().filter(|&&d| d == f.src_crossbar).count() as u64)
            .sum();
        for topo in topologies() {
            let name = topo.name();
            let cfg = NocConfig { multicast, ..NocConfig::default() };
            let mut sim = NocSim::new(topo, cfg, EnergyModel::default());
            let stats = sim.run(&flows).unwrap_or_else(|e| panic!("{name}: {e}"));
            prop_assert_eq!(stats.delivered, expected, "{} multicast={}", name, multicast);
        }
    }

    #[test]
    fn latency_at_least_hop_count(
        src in 0u32..CROSSBARS,
        dst in 0u32..CROSSBARS,
    ) {
        prop_assume!(src != dst);
        for topo in topologies() {
            let min_hops = topo.hops(topo.endpoint(src), topo.endpoint(dst)) as u64;
            let name = topo.name();
            let mut sim = NocSim::new(topo, NocConfig::default(), EnergyModel::default());
            let stats = sim
                .run(&[SpikeFlow::unicast(1, src, dst, 0)])
                .expect("single flow");
            prop_assert!(
                stats.max_latency_cycles >= min_hops,
                "{}: latency {} < hops {}",
                name,
                stats.max_latency_cycles,
                min_hops
            );
        }
    }

    #[test]
    fn tiny_buffers_never_lose_packets(
        flows in arb_flows(40),
        depth in 1usize..3,
    ) {
        let cfg = NocConfig { buffer_depth: depth, ..NocConfig::default() };
        let mut sim = NocSim::new(
            Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
            cfg,
            EnergyModel::default(),
        );
        let expected: u64 = flows.iter().map(|f| f.dst_crossbars.len() as u64).sum();
        let stats = sim.run(&flows).expect("drains");
        prop_assert_eq!(stats.delivered, expected);
    }

    #[test]
    fn arbitration_policies_conserve_traffic(flows in arb_flows(50)) {
        let expected: u64 = flows.iter().map(|f| f.dst_crossbars.len() as u64).sum();
        for arb in [Arbitration::RoundRobin, Arbitration::OldestFirst, Arbitration::FixedPriority] {
            let cfg = NocConfig { arbitration: arb, ..NocConfig::default() };
            let mut sim = NocSim::new(
                Box::new(NocTree::new(CROSSBARS as usize, 2)),
                cfg,
                EnergyModel::default(),
            );
            let stats = sim.run(&flows).expect("drains");
            prop_assert_eq!(stats.delivered, expected, "{:?}", arb);
        }
    }

    #[test]
    fn energy_counters_are_consistent(flows in arb_flows(40)) {
        let mut sim = NocSim::new(
            Box::new(Mesh2D::for_crossbars(CROSSBARS as usize)),
            NocConfig::default(),
            EnergyModel::default(),
        );
        let stats = sim.run(&flows).expect("drains");
        let c = &stats.counters;
        prop_assert_eq!(c.deliveries, stats.delivered);
        // a packet traverses at least one router (its source) per delivery path
        if stats.delivered > 0 {
            prop_assert!(c.router_traversals >= stats.delivered);
        }
        // energy is non-negative and zero iff no traffic
        if c.packets_injected == 0 {
            prop_assert_eq!(stats.global_energy_pj, 0.0);
        } else {
            prop_assert!(stats.global_energy_pj > 0.0);
        }
    }
}
