//! Property-based tests over the partitioning core: every partitioner,
//! on arbitrary random spike graphs, must produce feasible mappings; the
//! cost function must satisfy its algebraic identities; refinement must be
//! monotone.

use neuromap::core::baselines::{
    GaConfig, GaPartitioner, NeutramsPartitioner, PacmanPartitioner, RandomPartitioner, SaConfig,
    SaPartitioner,
};
use neuromap::core::partition::{FitnessKind, PartitionProblem, Partitioner};
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::refine::refine;
use neuromap::core::SpikeGraph;
use proptest::prelude::*;

mod common;

/// Strategy: a random spike graph with up to `n_max` neurons.
fn arb_graph(n_max: u32) -> impl Strategy<Value = SpikeGraph> {
    (2..=n_max).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n as usize * 4));
        let counts = proptest::collection::vec(0u32..20, n as usize);
        (edges, counts).prop_map(move |(edges, counts)| {
            SpikeGraph::from_parts(n, edges, counts).expect("endpoints in range")
        })
    })
}

/// Strategy: a feasible (crossbars, capacity) pair for a given n.
fn arb_arch(n: u32) -> impl Strategy<Value = (usize, u32)> {
    (2usize..=6).prop_flat_map(move |c| {
        let min_cap = n.div_ceil(c as u32);
        (Just(c), min_cap..=min_cap + n.max(2))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(48)))]

    #[test]
    fn all_partitioners_always_feasible(
        graph in arb_graph(24),
        seed in 0u64..1000,
    ) {
        let n = graph.num_neurons();
        let c = 3usize;
        let cap = n.div_ceil(3) + 2;
        let problem = PartitionProblem::new(&graph, c, cap).expect("feasible instance");
        let parts: Vec<Box<dyn Partitioner>> = vec![
            Box::new(PacmanPartitioner::new()),
            Box::new(NeutramsPartitioner::new()),
            Box::new(RandomPartitioner::new(seed)),
            Box::new(SaPartitioner::new(SaConfig { moves: 300, seed, ..SaConfig::default() })),
            Box::new(GaPartitioner::new(GaConfig { generations: 4, population: 8, seed, ..GaConfig::default() })),
            Box::new(PsoPartitioner::new(PsoConfig { swarm_size: 6, iterations: 5, seed, ..PsoConfig::default() })),
        ];
        for p in &parts {
            let m = p.partition(&problem).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            prop_assert!(problem.is_feasible(m.assignment()), "{}", p.name());
            prop_assert!(m.validate(
                &neuromap::hw::arch::Architecture::custom(
                    c, cap, neuromap::hw::arch::InterconnectKind::Mesh
                ).expect("valid arch")
            ).is_ok(), "{}", p.name());
        }
    }

    #[test]
    fn cost_identities(graph in arb_graph(20)) {
        let n = graph.num_neurons();
        let problem = PartitionProblem::new(&graph, 4, n).expect("feasible");
        // everything on one crossbar: nothing is cut
        let all_zero = vec![0u32; n as usize];
        prop_assert_eq!(problem.cut_spikes(&all_zero), 0);
        prop_assert_eq!(problem.cut_packets(&all_zero), 0);
        // fully scattered: every non-self synapse with a spiking source is cut
        let scattered: Vec<u32> = (0..n).map(|i| i % 4).collect();
        let expected: u64 = graph
            .synapses()
            .iter()
            .filter(|&&(a, b)| scattered[a as usize] != scattered[b as usize])
            .map(|&(a, _)| graph.count(a) as u64)
            .sum();
        prop_assert_eq!(problem.cut_spikes(&scattered), expected);
        // packets never exceed spikes (deduplication only removes)
        prop_assert!(problem.cut_packets(&scattered) <= problem.cut_spikes(&scattered));
    }

    #[test]
    fn move_delta_is_exact(
        graph in arb_graph(14),
        to in 0u32..3,
        idx in 0usize..14,
    ) {
        let n = graph.num_neurons();
        let i = idx % n as usize;
        let problem = PartitionProblem::new(&graph, 3, n).expect("feasible");
        let a: Vec<u32> = (0..n).map(|k| k % 3).collect();
        let before = problem.cut_spikes(&a) as i64;
        let mut b = a.clone();
        b[i] = to;
        let after = problem.cut_spikes(&b) as i64;
        prop_assert_eq!(problem.move_delta_spikes(&a, i, to), after - before);
    }

    #[test]
    fn refine_is_monotone_and_consistent(
        graph in arb_graph(18),
        passes in 1u32..6,
    ) {
        let n = graph.num_neurons();
        let cap = n.div_ceil(3) + 1;
        let problem = PartitionProblem::new(&graph, 3, cap).expect("feasible");
        for kind in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
            let mut a: Vec<u32> = (0..n).map(|k| k % 3).collect();
            let before = problem.cost(kind, &a);
            let after = refine(&problem, kind, &mut a, passes);
            prop_assert!(after <= before, "{kind:?}");
            prop_assert!(problem.is_feasible(&a), "{kind:?}");
            // the incremental bookkeeping must agree with a fresh evaluation
            prop_assert_eq!(after, problem.cost(kind, &a), "{:?}", kind);
        }
    }

    #[test]
    fn pso_respects_capacity_on_arbitrary_instances(
        graph in arb_graph(16),
        (c, cap) in (8u32..=16).prop_flat_map(arb_arch),
    ) {
        let n = graph.num_neurons();
        prop_assume!(n as u64 <= c as u64 * cap as u64);
        let problem = match PartitionProblem::new(&graph, c, cap) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let pso = PsoPartitioner::new(PsoConfig { swarm_size: 5, iterations: 4, ..PsoConfig::default() });
        let m = pso.partition(&problem).expect("feasible instance solves");
        prop_assert!(m.occupancy().iter().all(|&o| o <= cap as usize));
    }
}
