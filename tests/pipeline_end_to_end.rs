//! End-to-end integration: the full Figure-4 flow (application → SNN
//! simulation → spike graph → partitioner → interconnect simulation)
//! across applications, partitioners, and architectures.

use neuromap::apps::{hello_world::HelloWorld, synthetic::Synthetic, App};
use neuromap::core::baselines::{
    GaConfig, GaPartitioner, NeutramsPartitioner, PacmanPartitioner, RandomPartitioner, SaConfig,
    SaPartitioner,
};
use neuromap::core::partition::Partitioner;
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::{run_pipeline, PipelineConfig};
use neuromap::hw::arch::{Architecture, InterconnectKind};

fn quick_pso() -> PsoPartitioner {
    PsoPartitioner::new(PsoConfig {
        swarm_size: 20,
        iterations: 20,
        ..PsoConfig::default()
    })
}

#[test]
fn every_partitioner_completes_the_full_flow() {
    let app = Synthetic {
        steps: 300,
        ..Synthetic::new(2, 24)
    };
    let graph = app.spike_graph(1).expect("app simulates");
    let arch = Architecture::custom(4, 18, InterconnectKind::Tree { arity: 4 }).unwrap();
    let cfg = PipelineConfig::for_arch(arch);

    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(NeutramsPartitioner::new()),
        Box::new(PacmanPartitioner::new()),
        Box::new(RandomPartitioner::new(3)),
        Box::new(SaPartitioner::new(SaConfig {
            moves: 3000,
            ..SaConfig::default()
        })),
        Box::new(GaPartitioner::new(GaConfig {
            generations: 10,
            ..GaConfig::default()
        })),
        Box::new(quick_pso()),
    ];
    for p in &partitioners {
        let report =
            run_pipeline(&graph, p.as_ref(), &cfg).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        // conservation: every synaptic event is local or cut
        assert_eq!(
            report.local_events + report.cut_spikes,
            graph.total_synaptic_events(),
            "{}",
            p.name()
        );
        // the NoC delivered exactly the cut traffic (per-synapse mode)
        assert_eq!(report.noc.delivered, report.cut_spikes, "{}", p.name());
        assert!(report.total_energy_pj >= report.global_energy_pj);
        assert!(report.mapping.num_neurons() == graph.num_neurons() as usize);
    }
}

#[test]
fn pso_never_loses_to_the_baselines() {
    // the paper's headline, as an invariant: with baseline seeding the PSO
    // result is at least as good as PACMAN and NEUTRAMS on the objective
    for (layers, width) in [(1u32, 30u32), (2, 24), (3, 16)] {
        let app = Synthetic {
            steps: 300,
            ..Synthetic::new(layers, width)
        };
        let graph = app.spike_graph(9).expect("app simulates");
        let cap = (graph.num_neurons() / 4) + 4;
        let arch = Architecture::custom(5, cap, InterconnectKind::Mesh).unwrap();
        let cfg = PipelineConfig::for_arch(arch);

        let pso = run_pipeline(&graph, &quick_pso(), &cfg).unwrap();
        let pacman = run_pipeline(&graph, &PacmanPartitioner::new(), &cfg).unwrap();
        let neutrams = run_pipeline(&graph, &NeutramsPartitioner::new(), &cfg).unwrap();
        assert!(
            pso.cut_spikes <= pacman.cut_spikes && pso.cut_spikes <= neutrams.cut_spikes,
            "{layers}x{width}: pso {} vs pacman {} vs neutrams {}",
            pso.cut_spikes,
            pacman.cut_spikes,
            neutrams.cut_spikes
        );
    }
}

#[test]
fn all_interconnects_complete_and_account_energy() {
    let app = HelloWorld {
        steps: 300,
        ..HelloWorld::default()
    };
    let graph = app.spike_graph(5).expect("app simulates");
    for kind in [
        InterconnectKind::Mesh,
        InterconnectKind::Tree { arity: 4 },
        InterconnectKind::Tree { arity: 2 },
        InterconnectKind::Torus,
        InterconnectKind::Star,
    ] {
        let arch = Architecture::custom(4, 36, kind).unwrap();
        let cfg = PipelineConfig::for_arch(arch);
        let r = run_pipeline(&graph, &PacmanPartitioner::new(), &cfg)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(r.noc.delivered, r.cut_spikes, "{kind:?}");
        if r.cut_spikes > 0 {
            assert!(r.global_energy_pj > 0.0, "{kind:?}");
            assert!(r.noc.max_latency_cycles > 0, "{kind:?}");
        }
    }
}

#[test]
fn shallow_fifo_torus_flow_completes_with_vcs_on_both_engines() {
    // the full application -> partition -> torus flow at realistic
    // router FIFO depth 2 with 2 virtual channels: the engine choice
    // must not change a single reported byte, and the report must carry
    // the per-VC counters (depth-2 single-VC torus routing is the
    // configuration class PR 4 had to paper over with depth-64 FIFOs)
    use neuromap::core::pipeline::TrafficMode;
    use neuromap::noc::config::NocConfig;
    use neuromap::noc::sim::EngineKind;

    let app = Synthetic {
        steps: 300,
        ..Synthetic::new(2, 24)
    };
    let graph = app.spike_graph(7).expect("app simulates");
    let arch = Architecture::custom(9, 8, InterconnectKind::Torus).unwrap();
    let mut cfg = PipelineConfig::for_arch(arch).with_traffic(TrafficMode::PerCrossbar);
    cfg.noc = NocConfig {
        buffer_depth: 2,
        vc_count: 2,
        ..NocConfig::default()
    };
    let oracle_cfg = cfg.clone().with_engine(EngineKind::CycleOracle);
    let part = PacmanPartitioner::new();
    let r_event = run_pipeline(&graph, &part, &cfg).unwrap();
    let r_oracle = run_pipeline(&graph, &part, &oracle_cfg).unwrap();
    assert_eq!(r_event, r_oracle);
    assert_eq!(
        r_event.noc.digest().unwrap(),
        r_oracle.noc.digest().unwrap()
    );
    assert_eq!(r_event.noc.per_vc.len(), 2);
    assert!(r_event.noc.delivered > 0, "traffic must cross the torus");
}

#[test]
fn single_crossbar_chip_has_zero_global_traffic() {
    let app = Synthetic {
        steps: 200,
        ..Synthetic::new(1, 20)
    };
    let graph = app.spike_graph(2).expect("app simulates");
    let arch = Architecture::custom(1, 64, InterconnectKind::Star).unwrap();
    let cfg = PipelineConfig::for_arch(arch);
    let r = run_pipeline(&graph, &PacmanPartitioner::new(), &cfg).unwrap();
    assert_eq!(r.cut_spikes, 0);
    assert_eq!(r.noc.delivered, 0);
    assert_eq!(r.global_energy_pj, 0.0);
    assert_eq!(r.local_events, graph.total_synaptic_events());
}

#[test]
fn infeasible_architectures_are_rejected_cleanly() {
    let app = Synthetic {
        steps: 100,
        ..Synthetic::new(1, 30)
    };
    let graph = app.spike_graph(0).expect("app simulates");
    let arch = Architecture::custom(2, 10, InterconnectKind::Mesh).unwrap(); // 20 < 40
    let cfg = PipelineConfig::for_arch(arch);
    let err = run_pipeline(&graph, &PacmanPartitioner::new(), &cfg).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cannot fit"), "unexpected error: {msg}");
}
