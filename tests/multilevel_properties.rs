//! Property-based tests over the multilevel coarsen–partition–refine
//! path (`core::multilevel`): projections of feasible coarse assignments
//! must stay capacity-valid all the way down, the V-cycle must never
//! price worse than the pure projection of its coarsest solution, the
//! parallel refinement must be byte-identical across thread counts, and
//! on a clustered small-instance corpus the V-cycle must match or beat
//! flat PSO at the same swarm budget.

use neuromap::core::multilevel::{build_levels, vcycle, MultilevelConfig};
use neuromap::core::partition::{FitnessKind, PartitionProblem};
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::SpikeGraph;
use proptest::prelude::*;

mod common;

/// Strategy: a random spike graph with 8..=n_max neurons (enough nodes
/// that coarsening has something to merge).
fn arb_graph(n_max: u32) -> impl Strategy<Value = SpikeGraph> {
    (8..=n_max).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n as usize * 4));
        let counts = proptest::collection::vec(0u32..20, n as usize);
        (edges, counts).prop_map(move |(edges, counts)| {
            SpikeGraph::from_parts(n, edges, counts).expect("endpoints in range")
        })
    })
}

/// A clustered graph: `clusters` dense blocks of `size` neurons (every
/// intra-cluster pair, heavy counts) plus a light ring of single
/// cross-cluster synapses — the structure heavy-edge matching is built
/// to collapse, with a known-good optimum of one cluster per crossbar.
fn clustered(clusters: u32, size: u32, seed: u32) -> SpikeGraph {
    let n = clusters * size;
    let mut edges = Vec::new();
    for c in 0..clusters {
        let base = c * size;
        for i in 0..size {
            for j in 0..size {
                if i != j {
                    edges.push((base + i, base + j));
                }
            }
        }
        // one light synapse to the next cluster, offset by the seed so
        // the corpus varies which boundary nodes carry the cross traffic
        let next = ((c + 1) % clusters) * size;
        edges.push((base + seed % size, next + (seed / 7) % size));
    }
    let counts = vec![5u32; n as usize];
    SpikeGraph::from_parts(n, edges, counts).expect("endpoints in range")
}

/// Small-but-coarsenable config with the given thread count; PSO and
/// refinement both run deterministically from a fixed seed.
fn small_cfg(threads: usize) -> MultilevelConfig {
    MultilevelConfig {
        pso: PsoConfig {
            swarm_size: 8,
            iterations: 8,
            seed_baselines: false,
            polish_passes: 0,
            threads,
            ..PsoConfig::default()
        },
        min_coarse_neurons: 4,
        max_levels: 4,
        threads,
        ..MultilevelConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(32)))]

    /// Any feasible assignment of any coarse level projects down to a
    /// feasible assignment of the original problem — the invariant that
    /// makes solving at the coarsest level sound at all.
    #[test]
    fn projection_preserves_feasibility(
        graph in arb_graph(48),
        c in 2usize..=6,
        rotation in 0u32..64,
    ) {
        let n = graph.num_neurons();
        // headroom so capacity stays halvable for a level or two
        let cap = 2 * n.div_ceil(c as u32) + 2;
        let problem = PartitionProblem::new(&graph, c, cap).expect("feasible");
        let stack = build_levels(&problem, &small_cfg(1));
        for k in 0..stack.num_levels() {
            let coarse = stack.problem_at(k, &problem).expect("stack levels are valid");
            let nk = coarse.graph().num_neurons();
            // a rotated round-robin is feasible at the coarse level
            // whenever the level itself is feasible (ceil(nk/c) <= cap_k)
            let assignment: Vec<u32> =
                (0..nk).map(|i| (i + rotation) % c as u32).collect();
            prop_assert!(coarse.is_feasible(&assignment), "level {k} round-robin");
            let mut fine = assignment;
            for j in (0..=k).rev() {
                fine = stack.project(j, &fine);
            }
            prop_assert!(
                problem.is_feasible(&fine),
                "level {k} projection violates fine capacity"
            );
        }
    }

    /// The V-cycle's never-worse guard: the returned cost is (a) the
    /// true fine cost of the returned mapping and (b) never above the
    /// pure projection of the coarsest solution.
    #[test]
    fn vcycle_never_worse_than_projection(
        graph in arb_graph(48),
        c in 2usize..=6,
        kind_idx in 0usize..2,
    ) {
        let n = graph.num_neurons();
        let cap = 2 * n.div_ceil(c as u32) + 2;
        let problem = PartitionProblem::new(&graph, c, cap).expect("feasible");
        let kind = [FitnessKind::CutSpikes, FitnessKind::CutPackets][kind_idx];
        let mut cfg = small_cfg(1);
        cfg.pso.fitness = kind;
        let out = vcycle(&problem, &cfg).expect("vcycle runs");
        prop_assert!(problem.is_feasible(out.mapping.assignment()));
        prop_assert_eq!(out.cost, problem.cost(kind, out.mapping.assignment()));
        prop_assert!(
            out.cost <= out.projected_cost,
            "refined {} > projected {}",
            out.cost,
            out.projected_cost
        );
    }

    /// The parallel boundary refinement is byte-identical across thread
    /// counts: sharding only changes who *proposes*, never what is
    /// applied.
    #[test]
    fn vcycle_is_byte_identical_across_threads(
        graph in arb_graph(40),
        c in 2usize..=5,
    ) {
        let n = graph.num_neurons();
        let cap = 2 * n.div_ceil(c as u32) + 2;
        let problem = PartitionProblem::new(&graph, c, cap).expect("feasible");
        let base = vcycle(&problem, &small_cfg(1)).expect("vcycle runs");
        for threads in [2usize, 4] {
            let out = vcycle(&problem, &small_cfg(threads)).expect("vcycle runs");
            prop_assert_eq!(
                out.mapping.assignment(),
                base.mapping.assignment(),
                "threads {} diverged from single-threaded run",
                threads
            );
            prop_assert_eq!(out.cost, base.cost);
        }
    }

    /// On the clustered corpus the multilevel path must match or beat
    /// flat PSO given the identical swarm budget: heavy-edge matching
    /// collapses exactly the blocks the swarm would otherwise have to
    /// discover coordinate by coordinate.
    #[test]
    fn vcycle_matches_or_beats_flat_pso_on_clustered_corpus(
        clusters in 3u32..=6,
        size in 3u32..=6,
        seed in 0u32..1000,
    ) {
        let graph = clustered(clusters, size, seed);
        let problem = PartitionProblem::new(&graph, clusters as usize, size * 2)
            .expect("feasible");
        let cfg = small_cfg(1);
        let flat = PsoPartitioner::new(cfg.pso)
            .partition_traced(&problem)
            .expect("feasible")
            .0;
        let flat_cost = problem.cut_spikes(flat.assignment());
        let out = vcycle(&problem, &cfg).expect("vcycle runs");
        prop_assert!(
            out.cost <= flat_cost,
            "vcycle {} worse than flat PSO {} on {}x{} corpus instance",
            out.cost,
            flat_cost,
            clusters,
            size
        );
    }
}
