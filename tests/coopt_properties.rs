//! Property tests for the joint partition ⇄ placement co-optimization
//! loop (`core::coopt`):
//!
//! * **Thread invariance** — the joint loop's outcome (mapping,
//!   placement, both costs, the full trace) must be byte-identical for
//!   1, 2, and 4 worker threads over random graphs and architectures.
//!   Segmented swarm runs carry per-particle RNG streams across
//!   placement refreshes, so threading stays a pure execution knob.
//! * **Fallback contract** — the returned result never loses to the
//!   staged partition-then-place pipeline on hop-weighted packets, and
//!   `used_joint` truthfully records which side won.
//! * **Feasibility** — the returned placed mapping always satisfies the
//!   architecture's capacity.
//!
//! `NEUROMAP_PROPTEST_CASES` overrides the per-test case count (CI runs
//! a higher-case pass over this suite; see `.github/workflows/ci.yml`).

use neuromap::core::coopt::{co_optimize, CooptConfig};
use neuromap::core::partition::{FitnessKind, PartitionProblem};
use neuromap::core::pipeline::TrafficMode;
use neuromap::core::place::PlaceConfig;
use neuromap::core::pso::PsoConfig;
use neuromap::core::SpikeGraph;
use neuromap::noc::topology::{DistanceLut, Mesh2D, NocTree, Star, Topology, Torus};
use proptest::prelude::*;

mod common;

/// Strategy: a random spike graph with 2..=n_max neurons, including
/// duplicate edges and self-loops (mirrors `tests/eval_properties.rs`).
fn arb_graph(n_max: u32) -> impl Strategy<Value = SpikeGraph> {
    (2..=n_max).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n as usize * 5));
        let counts = proptest::collection::vec(0u32..25, n as usize);
        (edges, counts).prop_map(move |(edges, counts)| {
            SpikeGraph::from_parts(n, edges, counts).expect("endpoints in range")
        })
    })
}

fn topology_for(idx: u8, crossbars: usize) -> Box<dyn Topology> {
    match idx % 4 {
        0 => Box::new(Mesh2D::for_crossbars(crossbars)),
        1 => Box::new(Torus::for_crossbars(crossbars)),
        2 => Box::new(NocTree::new(crossbars, 2)),
        _ => Box::new(Star::new(crossbars)),
    }
}

fn small_cfg(seed: u64, threads: usize) -> CooptConfig {
    CooptConfig {
        pso: PsoConfig {
            swarm_size: 10,
            iterations: 12,
            seed,
            threads,
            fitness: FitnessKind::CutHops,
            ..PsoConfig::default()
        },
        place: PlaceConfig {
            restarts: 2,
            sa_moves: 200,
            threads,
            ..PlaceConfig::default()
        },
        replace_every: 5,
        multilevel: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(12)))]

    /// 1, 2, and 4 threads must produce byte-identical joint outcomes —
    /// mapping, placement, staged and joint costs, and the full trace.
    #[test]
    fn joint_loop_is_thread_invariant(
        graph in arb_graph(20),
        topo_idx in 0u8..4,
        traffic_idx in 0u8..2,
        seed in 0u64..1000,
    ) {
        let crossbars = 4usize;
        let capacity = graph.num_neurons().div_ceil(crossbars as u32) + 1;
        let topo = topology_for(topo_idx, crossbars);
        let dist = DistanceLut::new(topo.as_ref());
        let problem = PartitionProblem::new(&graph, crossbars, capacity)
            .unwrap()
            .with_hops(&dist)
            .unwrap();
        let mode = if traffic_idx == 0 { TrafficMode::PerSynapse } else { TrafficMode::PerCrossbar };

        let one = co_optimize(&problem, &dist, mode, &small_cfg(seed, 1)).unwrap();
        for threads in [2usize, 4] {
            let many = co_optimize(&problem, &dist, mode, &small_cfg(seed, threads)).unwrap();
            prop_assert_eq!(
                &many, &one,
                "thread count {} changed the joint outcome", threads
            );
        }
    }

    /// The joint loop is a pure refinement: its returned cost is the
    /// minimum of the two sides, `used_joint` records the winner
    /// truthfully, and the placed mapping respects capacity.
    #[test]
    fn joint_never_loses_to_staged_and_stays_feasible(
        graph in arb_graph(20),
        topo_idx in 0u8..4,
        seed in 0u64..1000,
    ) {
        let crossbars = 4usize;
        let capacity = graph.num_neurons().div_ceil(crossbars as u32) + 1;
        let topo = topology_for(topo_idx, crossbars);
        let dist = DistanceLut::new(topo.as_ref());
        let problem = PartitionProblem::new(&graph, crossbars, capacity)
            .unwrap()
            .with_hops(&dist)
            .unwrap();
        let out = co_optimize(&problem, &dist, TrafficMode::PerCrossbar, &small_cfg(seed, 2))
            .unwrap();
        prop_assert_eq!(out.used_joint, out.joint_cost < out.staged_cost);
        let winner = if out.used_joint { out.joint_cost } else { out.staged_cost };
        prop_assert_eq!(winner, out.joint_cost.min(out.staged_cost));
        prop_assert!(out.mapping.occupancy().iter().all(|&o| o <= capacity as usize));
        // init entry + one per iteration
        prop_assert_eq!(out.trace.len(), 13);
    }
}
