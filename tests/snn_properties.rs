//! Property-based tests over the SNN substrate: spike-train invariants,
//! coding round trips, generator statistics, and simulator conservation
//! laws on arbitrary networks.

use neuromap::snn::coding::{
    isi_decode, isi_encode, latency_decode, latency_encode, level_crossing_encode, rate_encode,
};
use neuromap::snn::generator::Generator;
use neuromap::snn::network::{ConnectPattern, NetworkBuilder, WeightInit};
use neuromap::snn::neuron::NeuronKind;
use neuromap::snn::spikes::{isi_distortion, SpikeTrain};
use neuromap::snn::Simulator;
use proptest::prelude::*;

mod common;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(64)))]

    #[test]
    fn spike_trains_are_always_strictly_increasing(times in proptest::collection::vec(0u32..10_000, 0..200)) {
        let t = SpikeTrain::from_times(times);
        prop_assert!(t.times().windows(2).all(|w| w[0] < w[1]));
        // ISIs are consistent with the times
        prop_assert_eq!(t.isis().len(), t.len().saturating_sub(1));
        prop_assert!(t.isis().iter().all(|&d| d > 0));
    }

    #[test]
    fn isi_distortion_is_shift_invariant(
        times in proptest::collection::vec(0u32..5_000, 2..60),
        shift in 1u32..500,
    ) {
        let sent = SpikeTrain::from_times(times);
        let shifted: SpikeTrain = sent.iter().map(|&t| t + shift).collect();
        prop_assert_eq!(isi_distortion(&sent, &shifted), 0);
    }

    #[test]
    fn isi_distortion_is_symmetric(
        a in proptest::collection::vec(0u32..5_000, 2..40),
        b in proptest::collection::vec(0u32..5_000, 2..40),
    ) {
        let ta = SpikeTrain::from_times(a);
        let tb = SpikeTrain::from_times(b);
        prop_assert_eq!(isi_distortion(&ta, &tb), isi_distortion(&tb, &ta));
    }

    #[test]
    fn latency_code_roundtrip(v in 0.0f64..=1.0, window in 2u32..1000) {
        let t = latency_encode(v, window);
        let d = latency_decode(&t, window).expect("one spike encoded");
        // quantization error bounded by one step of the window
        prop_assert!((d - v).abs() <= 1.0 / (window - 1) as f64 + 1e-9);
    }

    #[test]
    fn isi_code_roundtrip(v in 0.0f64..=1.0) {
        let t = isi_encode(v, 5, 100, 2000);
        let d = isi_decode(&t, 5, 100).expect("multiple spikes encoded");
        prop_assert!((d - v).abs() < 0.02, "v={v} decoded={d}");
    }

    #[test]
    fn rate_encode_clamps_and_scales(vals in proptest::collection::vec(-2.0f64..3.0, 1..50)) {
        let rates = rate_encode(&vals, 120.0);
        prop_assert!(rates.iter().all(|&r| (0.0..=120.0).contains(&r)));
    }

    #[test]
    fn level_crossing_spike_count_bounded_by_swing(
        deltas in proptest::collection::vec(-1.0f64..1.0, 2..100),
    ) {
        // build a signal as a cumulative walk; total crossings cannot
        // exceed total variation / delta
        let mut signal = vec![0.0];
        for d in &deltas {
            signal.push(signal.last().unwrap() + d);
        }
        let lc_delta = 0.5;
        let (up, down) = level_crossing_encode(&signal, lc_delta);
        let total_variation: f64 = deltas.iter().map(|d| d.abs()).sum();
        let bound = (total_variation / lc_delta).ceil() as usize + 1;
        prop_assert!(up.len() + down.len() <= bound);
    }

    #[test]
    fn poisson_generator_is_deterministic_per_seed(rate in 1.0f64..200.0, seed in 0u64..500) {
        let g = Generator::poisson(rate);
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200).filter(|&t| g.fires(0, t, 1.0, &mut rng)).count()
        };
        prop_assert_eq!(sample(seed), sample(seed));
    }

    #[test]
    fn simulation_records_every_neuron(
        inputs in 1u32..20,
        outputs in 1u32..20,
        weight in 0.0f32..10.0,
        seed in 0u64..100,
    ) {
        let mut b = NetworkBuilder::new();
        let i = b.add_input_group("in", inputs, Generator::poisson(50.0)).unwrap();
        let o = b.add_group("out", outputs, NeuronKind::izhikevich_rs()).unwrap();
        b.connect(i, o, ConnectPattern::Full, WeightInit::Constant(weight), 1).unwrap();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(net);
        let mut rng = StdRng::seed_from_u64(seed);
        let rec = sim.run(100, &mut rng).expect("runs");
        prop_assert_eq!(rec.num_neurons() as u32, inputs + outputs);
        prop_assert_eq!(rec.steps(), 100);
        // all recorded spike times are inside the simulated window
        for train in rec.trains() {
            prop_assert!(train.iter().all(|&t| t < 100));
        }
        // zero weight ⇒ silent outputs
        if weight == 0.0 {
            for id in inputs..inputs + outputs {
                prop_assert!(rec.train(id).is_empty());
            }
        }
    }

    #[test]
    fn count_in_partitions_the_train(
        times in proptest::collection::vec(0u32..1000, 0..100),
        split in 0u32..1000,
    ) {
        let t = SpikeTrain::from_times(times);
        let left = t.count_in(0, split);
        let right = t.count_in(split, 1000);
        prop_assert_eq!(left + right, t.count_in(0, 1000));
    }
}
