//! Property tests for the incremental fitness engine: on arbitrary
//! graphs, for every `FitnessKind`, the incrementally maintained cost
//! must equal a full `cut_spikes`/`cut_packets` recomputation across
//! random move sequences, random churn fractions, and the batched swarm
//! evaluator.

use neuromap::core::eval::{EvalEngine, SwarmEval, SwarmScratch};
use neuromap::core::partition::{FitnessKind, PartitionProblem};
use neuromap::core::SpikeGraph;
use proptest::prelude::*;

mod common;

/// Strategy: a random spike graph with 2..=n_max neurons, including
/// duplicate edges and self-loops.
fn arb_graph(n_max: u32) -> impl Strategy<Value = SpikeGraph> {
    (2..=n_max).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n as usize * 5));
        let counts = proptest::collection::vec(0u32..25, n as usize);
        (edges, counts).prop_map(move |(edges, counts)| {
            SpikeGraph::from_parts(n, edges, counts).expect("endpoints in range")
        })
    })
}

const KINDS: [FitnessKind; 2] = [FitnessKind::CutSpikes, FitnessKind::CutPackets];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(40)))]

    #[test]
    fn applied_moves_match_full_recompute(
        graph in arb_graph(20),
        moves in proptest::collection::vec((0u32..20, 0u32..4), 1..60),
    ) {
        let n = graph.num_neurons();
        let problem = PartitionProblem::new(&graph, 4, n).expect("feasible");
        for kind in KINDS {
            let engine = EvalEngine::new(problem, kind);
            let mut a: Vec<u32> = (0..n).map(|i| i % 4).collect();
            let mut state = engine.init(&a);
            for &(i, to) in &moves {
                let i = (i % n) as usize;
                let before = state.cost() as i64;
                let peek = engine.move_delta(&state, &a, i, to);
                let applied = engine.apply_move(&mut state, &mut a, i, to);
                prop_assert_eq!(peek, applied, "{:?}: peek != applied", kind);
                prop_assert_eq!(
                    state.cost(),
                    engine.full_cost(&a),
                    "{:?}: state drifted after moving {} to {}", kind, i, to
                );
                prop_assert_eq!(state.cost() as i64, before + applied, "{:?}", kind);
            }
        }
    }

    #[test]
    fn sync_matches_full_recompute_at_any_churn(
        graph in arb_graph(24),
        churn in proptest::collection::vec((0u32..24, 0u32..5), 0..24),
        threshold in 0.0f32..=1.0,
    ) {
        let n = graph.num_neurons();
        let problem = PartitionProblem::new(&graph, 5, n).expect("feasible");
        for kind in KINDS {
            let engine = EvalEngine::new(problem, kind).with_churn_threshold(threshold);
            let mut current: Vec<u32> = (0..n).map(|i| i % 5).collect();
            let mut state = engine.init(&current);
            // target = current with a random churn fraction applied
            let mut target = current.clone();
            for &(i, to) in &churn {
                target[(i % n) as usize] = to;
            }
            let cost = engine.sync(&mut state, &mut current, &target);
            prop_assert_eq!(&current, &target, "{:?}: sync must land on target", kind);
            prop_assert_eq!(cost, problem.cost(kind, &target), "{:?}", kind);
            prop_assert_eq!(state.cost(), cost, "{:?}", kind);
        }
    }

    #[test]
    fn batched_swarm_eval_matches_scalar(
        graph in arb_graph(16),
        lanes in 1usize..70,
        seed in 0u64..500,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = graph.num_neurons();
        let problem = PartitionProblem::new(&graph, 6, n).expect("feasible");
        let mut rng = StdRng::seed_from_u64(seed);
        let positions: Vec<u32> =
            (0..lanes * n as usize).map(|_| rng.gen_range(0..6u32)).collect();
        for kind in KINDS {
            let evaluator = SwarmEval::new(problem, kind);
            let mut out = vec![0u64; lanes];
            let mut scratch = SwarmScratch::default();
            evaluator.eval_swarm(&positions, lanes, &mut scratch, &mut out);
            for lane in 0..lanes {
                let row = &positions[lane * n as usize..(lane + 1) * n as usize];
                prop_assert_eq!(out[lane], problem.cost(kind, row), "{:?} lane {}", kind, lane);
            }
        }
    }

    // ---- large_arch: the lifted multi-word envelope -------------------
    //
    // 65–300 crossbars straddles every byte-tile mask stride (2–4 words)
    // plus the word-tile kernel past the 256-crossbar byte-tile ceiling;
    // the batched evaluator must equal the scalar `full_cost` everywhere,
    // for both objectives, including lane counts that leave a partial
    // final tile.

    #[test]
    fn large_arch_batched_eval_matches_scalar(
        graph in arb_graph(40),
        crossbars in 65usize..=300,
        lanes in 1usize..130,
        seed in 0u64..500,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = graph.num_neurons();
        let problem = PartitionProblem::new(&graph, crossbars, n).expect("feasible");
        let mut rng = StdRng::seed_from_u64(seed);
        let positions: Vec<u32> = (0..lanes * n as usize)
            .map(|_| rng.gen_range(0..crossbars as u32))
            .collect();
        for kind in KINDS {
            let evaluator = SwarmEval::new(problem, kind);
            let engine = EvalEngine::new(problem, kind);
            prop_assert_eq!(
                evaluator.kernel(),
                if crossbars <= 256 {
                    neuromap::core::eval::SwarmKernel::ByteTile
                } else {
                    neuromap::core::eval::SwarmKernel::WordTile
                },
                "kernel map regressed ({:?}, {} crossbars)",
                kind, crossbars
            );
            let mut out = vec![0u64; lanes];
            let mut scratch = SwarmScratch::default();
            evaluator.eval_swarm(&positions, lanes, &mut scratch, &mut out);
            for lane in 0..lanes {
                let row = &positions[lane * n as usize..(lane + 1) * n as usize];
                prop_assert_eq!(
                    out[lane],
                    engine.full_cost(row),
                    "{:?} c={} lane {}", kind, crossbars, lane
                );
            }
        }
    }

    #[test]
    fn large_arch_incremental_engine_matches_recompute(
        graph in arb_graph(30),
        crossbars in 65usize..=300,
        moves in proptest::collection::vec((0u32..30, 0u32..300), 1..40),
    ) {
        let n = graph.num_neurons();
        let problem = PartitionProblem::new(&graph, crossbars, n).expect("feasible");
        for kind in KINDS {
            let engine = EvalEngine::new(problem, kind);
            let mut a: Vec<u32> = (0..n).map(|i| i % crossbars as u32).collect();
            let mut state = engine.init(&a);
            for &(i, to) in &moves {
                let i = (i % n) as usize;
                let to = to % crossbars as u32;
                engine.apply_move(&mut state, &mut a, i, to);
                prop_assert_eq!(state.cost(), engine.full_cost(&a), "{:?}", kind);
            }
        }
    }

    #[test]
    fn move_then_inverse_is_identity(
        graph in arb_graph(18),
        i in 0u32..18,
        to in 0u32..4,
    ) {
        let n = graph.num_neurons();
        let i = (i % n) as usize;
        let problem = PartitionProblem::new(&graph, 4, n).expect("feasible");
        for kind in KINDS {
            let engine = EvalEngine::new(problem, kind);
            let mut a: Vec<u32> = (0..n).map(|i| i % 4).collect();
            let mut state = engine.init(&a);
            let original = a.clone();
            let cost0 = state.cost();
            let from = a[i];
            let d1 = engine.apply_move(&mut state, &mut a, i, to);
            let d2 = engine.apply_move(&mut state, &mut a, i, from);
            prop_assert_eq!(d1, -d2, "{:?}: deltas must be antisymmetric", kind);
            prop_assert_eq!(state.cost(), cost0, "{:?}", kind);
            prop_assert_eq!(&a, &original, "{:?}", kind);
        }
    }
}
