//! Cross-crate metric validation: craft traffic with known ground truth
//! and verify the paper's two introduced metrics (spike disorder, ISI
//! distortion) plus energy accounting behave as specified end to end.

use neuromap::hw::energy::EnergyModel;
use neuromap::noc::config::NocConfig;
use neuromap::noc::sim::NocSim;
use neuromap::noc::topology::{Mesh2D, Star};
use neuromap::noc::traffic::SpikeFlow;

#[test]
fn uncongested_streams_have_no_distortion_or_disorder() {
    // one source, periodic spikes, no contention: the interconnect is a
    // constant delay — ISIs survive exactly
    let flows: Vec<SpikeFlow> = (0..10)
        .map(|k| SpikeFlow::unicast(1, 0, 3, k * 2))
        .collect();
    let mut sim = NocSim::new(
        Box::new(Mesh2D::for_crossbars(4)),
        NocConfig::default(),
        EnergyModel::default(),
    );
    let stats = sim.run(&flows).expect("drains");
    assert_eq!(stats.delivered, 10);
    assert_eq!(stats.avg_isi_distortion_cycles, 0.0);
    assert_eq!(stats.disorder_fraction, 0.0);
}

#[test]
fn hub_congestion_creates_isi_distortion() {
    // many crossbars burst through a star hub toward one destination in
    // alternating steps: queueing delay varies per step → ISI distortion
    let mut flows = Vec::new();
    for step in 0..12u32 {
        // variable burst size: heavy every other step
        let burst = if step % 2 == 0 { 24 } else { 1 };
        for k in 0..burst {
            flows.push(SpikeFlow::unicast(100 + k, 1 + (k % 5), 0, step));
        }
    }
    // slow clock so bursts interact with the step length
    let cfg = NocConfig {
        cycles_per_step: 32,
        ..NocConfig::default()
    };
    let mut sim = NocSim::new(Box::new(Star::new(6)), cfg, EnergyModel::default());
    let stats = sim.run(&flows).expect("drains");
    assert!(
        stats.avg_isi_distortion_cycles > 0.0,
        "variable congestion must distort ISIs"
    );
}

#[test]
fn cross_step_overtaking_is_disorder() {
    // step 0: a big burst from crossbar 1 to 0 (long queue); step 1: a
    // single spike from crossbar 2 to 0 that arrives while the queue is
    // still draining → it overtakes older spikes
    let mut flows = Vec::new();
    for k in 0..40u32 {
        flows.push(SpikeFlow::unicast(k, 1, 0, 0));
    }
    flows.push(SpikeFlow::unicast(999, 2, 0, 1));
    let cfg = NocConfig {
        cycles_per_step: 8,
        ..NocConfig::default()
    };
    let mut sim = NocSim::new(Box::new(Star::new(3)), cfg, EnergyModel::default());
    let stats = sim.run(&flows).expect("drains");
    assert!(
        stats.disorder_fraction > 0.0,
        "the late spike should overtake queued older traffic"
    );
}

#[test]
fn energy_scales_with_distance_and_traffic() {
    let run = |flows: &[SpikeFlow]| {
        let mut sim = NocSim::new(
            Box::new(Mesh2D::grid(4, 1, 4)),
            NocConfig::default(),
            EnergyModel::default(),
        );
        sim.run(flows).expect("drains").global_energy_pj
    };
    let near = run(&[SpikeFlow::unicast(0, 0, 1, 0)]);
    let far = run(&[SpikeFlow::unicast(0, 0, 3, 0)]);
    assert!(far > near, "3 hops must cost more than 1");

    let once: Vec<SpikeFlow> = vec![SpikeFlow::unicast(0, 0, 3, 0)];
    let thrice: Vec<SpikeFlow> = (0..3).map(|k| SpikeFlow::unicast(k, 0, 3, k)).collect();
    assert!(
        (run(&thrice) - 3.0 * run(&once)).abs() < 1e-6,
        "uncongested energy is linear"
    );
}

#[test]
fn multicast_saves_energy_over_unicast_clones() {
    let flows = vec![SpikeFlow::multicast(7, 0, vec![1, 2, 3], 0); 5];
    let run = |multicast: bool| {
        let cfg = NocConfig {
            multicast,
            ..NocConfig::default()
        };
        let mut sim = NocSim::new(
            Box::new(neuromap::noc::topology::NocTree::new(4, 4)),
            cfg,
            EnergyModel::default(),
        );
        sim.run(&flows).expect("drains")
    };
    let mc = run(true);
    let uc = run(false);
    assert_eq!(mc.delivered, uc.delivered);
    assert!(
        mc.global_energy_pj < uc.global_energy_pj,
        "shared prefix links must be paid once: {} !< {}",
        mc.global_energy_pj,
        uc.global_energy_pj
    );
}

#[test]
fn per_vc_counters_partition_the_global_counters() {
    // ground-truth accounting across the per-VC split: every buffered
    // and forwarded packet belongs to exactly one VC, so the per-VC
    // counters must partition the global flit counters exactly, and no
    // VC FIFO may ever exceed its credit-bounded depth
    use neuromap::noc::topology::Torus;

    let mut flows = Vec::new();
    for step in 0..8u32 {
        for src in 0..16u32 {
            flows.push(SpikeFlow::multicast(
                src * 13 + step,
                src,
                vec![(src + 2) % 16, (src + 9) % 16, (src + 14) % 16],
                step,
            ));
        }
    }
    let cfg = NocConfig {
        buffer_depth: 2,
        vc_count: 4,
        ..NocConfig::default()
    };
    let mut sim = NocSim::new(
        Box::new(Torus::for_crossbars(16)),
        cfg,
        EnergyModel::default(),
    );
    let stats = sim.run(&flows).expect("dateline VCs keep the torus live");
    assert_eq!(stats.per_vc.len(), 4);
    let flits = u64::from(cfg.flits_per_packet);
    assert_eq!(
        stats.per_vc.iter().map(|v| v.forwarded).sum::<u64>() * flits,
        stats.counters.link_flits,
        "per-VC forwards must partition link traffic"
    );
    assert_eq!(
        stats.per_vc.iter().map(|v| v.enqueued).sum::<u64>() * flits,
        stats.counters.buffer_flits,
        "per-VC enqueues must partition buffered traffic"
    );
    assert!(stats
        .per_vc
        .iter()
        .all(|v| v.peak_occupancy <= cfg.buffer_depth as u64));
    // the dateline scheme routes through both halves of the VC space
    assert!(
        stats.per_vc.iter().filter(|v| v.forwarded > 0).count() >= 2,
        "{:?}",
        stats.per_vc
    );
    // identical traffic on a single VC delivers exactly the same spike
    // set — VCs change timing and multicast branch shapes, never
    // delivery conservation
    let single = NocConfig {
        vc_count: 1,
        buffer_depth: 8,
        ..cfg
    };
    let mut sim = NocSim::new(
        Box::new(Torus::for_crossbars(16)),
        single,
        EnergyModel::default(),
    );
    let sstats = sim.run(&flows).expect("drains");
    assert!(sstats.per_vc.is_empty());
    assert_eq!(sstats.delivered, stats.delivered);
}

#[test]
fn snn_and_noc_isi_definitions_agree() {
    // the spike-level ISI distortion helper in neuromap-snn and the
    // delivery-level one in neuromap-noc must agree on a shared scenario
    use neuromap::noc::stats::{isi_distortion, Delivery};
    use neuromap::snn::spikes::{isi_distortion as snn_isi, SpikeTrain};

    let sent = [0u64, 100, 200, 300];
    let recv = [5u64, 115, 205, 305]; // second spike +10 late
    let deliveries: Vec<Delivery> = sent
        .iter()
        .zip(&recv)
        .map(|(&s, &r)| Delivery {
            source_neuron: 1,
            src_crossbar: 0,
            dst_crossbar: 1,
            send_step: (s / 100) as u32,
            inject_cycle: s,
            deliver_cycle: r,
        })
        .collect();
    let (_, noc_max) = isi_distortion(&deliveries);

    let sent_train = SpikeTrain::from_times(sent.iter().map(|&t| t as u32).collect());
    let recv_train = SpikeTrain::from_times(recv.iter().map(|&t| t as u32).collect());
    let snn_max = snn_isi(&sent_train, &recv_train);

    assert_eq!(noc_max, snn_max as u64);
    assert_eq!(noc_max, 10);
}
