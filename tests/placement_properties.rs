//! Property and acceptance tests for the hop-aware placement layer:
//!
//! * the staged pipeline with identity placement must reproduce the
//!   pre-placement monolithic flow **byte-identically** (the golden is
//!   rebuilt inline from the same public primitives the seed pipeline
//!   used: partition → `build_flows` → `build_topology` → `NocSim`);
//! * `FitnessKind::CutHops` incremental engine deltas must equal a full
//!   recompute under random move/swap sequences, and the batched swarm
//!   evaluator must equal the scalar path across mask strides;
//! * `core::place` swap deltas must equal the O(C²) reference kernel,
//!   and the optimizer must be byte-deterministic across thread counts;
//! * acceptance: on the 64-crossbar mesh and the 256-crossbar
//!   `synth_16x16grid` scenarios (mesh *and* torus), hop-optimized
//!   placement strictly reduces hop-weighted packets and measurably
//!   reduces simulated NoC energy and latency vs identity placement.

use neuromap::apps::synthetic::LargeArch;
use neuromap::core::eval::{EvalEngine, SwarmEval, SwarmScratch};
use neuromap::core::partition::{FitnessKind, PartitionProblem, Partitioner};
use neuromap::core::pipeline::{
    build_flows, build_topology, local_events, MappingPipeline, PipelineConfig, PlacementStrategy,
    TrafficMode,
};
use neuromap::core::place::{
    optimize_placement, placement_cost, swap_delta, PlaceConfig, TrafficMatrix,
};
use neuromap::core::SpikeGraph;
use neuromap::hw::arch::{Architecture, InterconnectKind};
use neuromap::hw::mapping::Mapping;
use neuromap::noc::sim::NocSim;
use neuromap::noc::topology::{DistanceLut, Mesh2D, NocTree, Star, Topology, Torus};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;

/// Strategy: a random spike graph with 2..=n_max neurons, including
/// duplicate edges and self-loops (mirrors `tests/eval_properties.rs`).
fn arb_graph(n_max: u32) -> impl Strategy<Value = SpikeGraph> {
    (2..=n_max).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n as usize * 5));
        let counts = proptest::collection::vec(0u32..25, n as usize);
        (edges, counts).prop_map(move |(edges, counts)| {
            SpikeGraph::from_parts(n, edges, counts).expect("endpoints in range")
        })
    })
}

/// The four interconnect kinds, selected by index.
fn interconnect(idx: u8) -> InterconnectKind {
    match idx % 4 {
        0 => InterconnectKind::Mesh,
        1 => InterconnectKind::Torus,
        2 => InterconnectKind::Tree {
            arity: 2 + u32::from(idx % 3),
        },
        _ => InterconnectKind::Star,
    }
}

fn topology_for(idx: u8, crossbars: usize) -> Box<dyn Topology> {
    match interconnect(idx) {
        InterconnectKind::Mesh => Box::new(Mesh2D::for_crossbars(crossbars)),
        InterconnectKind::Torus => Box::new(Torus::for_crossbars(crossbars)),
        InterconnectKind::Tree { arity } => Box::new(NocTree::new(crossbars, arity)),
        InterconnectKind::Star => Box::new(Star::new(crossbars)),
        _ => Box::new(Mesh2D::for_crossbars(crossbars)),
    }
}

// ---- identity placement vs the pre-refactor monolithic flow ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(24)))]

    /// The staged pipeline with identity placement must serialize to the
    /// exact bytes of the seed pipeline's flow, rebuilt here from the
    /// same public primitives it was made of (partition problem →
    /// partitioner → build_flows → build_topology → NocSim), including
    /// every pre-existing report field and the full NoC statistics.
    #[test]
    fn identity_placement_is_byte_identical_to_the_monolithic_flow(
        graph in arb_graph(24),
        arch_idx in 0u8..8,
        traffic_idx in 0u8..2,
    ) {
        use neuromap::core::baselines::PacmanPartitioner;
        let n = graph.num_neurons();
        let crossbars = 4usize;
        let capacity = n.div_ceil(crossbars as u32) + 1;
        let arch = Architecture::custom(crossbars, capacity, interconnect(arch_idx)).unwrap();
        let traffic = if traffic_idx == 0 { TrafficMode::PerSynapse } else { TrafficMode::PerCrossbar };
        let cfg = PipelineConfig::for_arch(arch.clone()).with_traffic(traffic);
        prop_assert_eq!(&cfg.placement, &PlacementStrategy::Identity);

        // the staged flow under test
        let part = PacmanPartitioner::new();
        let staged = MappingPipeline::new(cfg.clone()).run(&graph, &part).unwrap();

        // the pre-refactor flow, reconstructed from primitives
        let problem = PartitionProblem::new(&graph, crossbars, capacity).unwrap();
        let mapping = part.partition(&problem).unwrap();
        let cut_spikes = problem.cut_spikes(mapping.assignment());
        let local = local_events(&graph, &mapping);
        let flows = build_flows(&graph, &mapping, traffic);
        let mut noc_cfg = cfg.noc;
        if traffic == TrafficMode::PerSynapse {
            noc_cfg.multicast = false;
        }
        let (stats, _) = NocSim::new(build_topology(&arch), noc_cfg, *arch.energy())
            .run_with_duration(&flows, graph.duration_steps())
            .unwrap();

        // byte-level agreement on everything the seed pipeline reported
        prop_assert_eq!(staged.partitioner.as_str(), part.name());
        prop_assert_eq!(staged.num_neurons, n);
        prop_assert_eq!(staged.num_synapses, graph.num_synapses());
        prop_assert_eq!(staged.cut_spikes, cut_spikes);
        prop_assert_eq!(staged.local_events, local);
        prop_assert_eq!(staged.noc.digest().unwrap(), stats.digest().unwrap(), "NoC stats must digest-equal");
        let dim = arch.neurons_per_crossbar();
        let local_pj = arch.energy().local_pj_scaled(local, dim);
        prop_assert_eq!(staged.local_energy_pj.to_bits(), local_pj.to_bits());
        prop_assert_eq!(staged.global_energy_pj.to_bits(), stats.global_energy_pj.to_bits());
        prop_assert_eq!(
            staged.total_energy_pj.to_bits(),
            (local_pj + stats.global_energy_pj).to_bits()
        );
        prop_assert_eq!(staged.mapping.assignment(), mapping.assignment());
        prop_assert_eq!(staged.placement.as_str(), "identity");
        // and the full staged report round-trips byte-stably
        let json = serde_json::to_string(&staged).unwrap();
        let again = MappingPipeline::new(cfg).run(&graph, &part).unwrap();
        prop_assert_eq!(json, serde_json::to_string(&again).unwrap());
    }

    // ---- CutHops: incremental engine == full recompute ----------------

    #[test]
    fn cut_hops_deltas_match_recompute_under_moves_and_swaps(
        graph in arb_graph(20),
        topo_idx in 0u8..8,
        ops in proptest::collection::vec((0u32..20, 0u32..20, 0u8..2), 1..50),
    ) {
        let n = graph.num_neurons();
        let crossbars = 6usize;
        let topo = topology_for(topo_idx, crossbars);
        let lut = DistanceLut::new(topo.as_ref());
        let problem = PartitionProblem::new(&graph, crossbars, n)
            .unwrap()
            .with_hops(&lut)
            .unwrap();
        let engine = EvalEngine::new(problem, FitnessKind::CutHops);
        let mut a: Vec<u32> = (0..n).map(|i| i % crossbars as u32).collect();
        let mut state = engine.init(&a);
        prop_assert_eq!(state.cost(), engine.full_cost(&a));
        for &(x, y, is_swap) in &ops {
            let i = (x % n) as usize;
            if is_swap == 1 {
                let j = (y % n) as usize;
                let before = state.cost() as i64;
                let d = engine.apply_swap(&mut state, &mut a, i, j);
                prop_assert_eq!(state.cost() as i64, before + d);
            } else {
                let to = y % crossbars as u32;
                let peek = engine.move_delta(&state, &a, i, to);
                let applied = engine.apply_move(&mut state, &mut a, i, to);
                prop_assert_eq!(peek, applied, "peek != applied");
            }
            prop_assert_eq!(
                state.cost(),
                engine.full_cost(&a),
                "CutHops state drifted ({})", topo.name()
            );
        }
    }

    #[test]
    fn cut_hops_batched_swarm_matches_scalar(
        graph in arb_graph(30),
        crossbars in 2usize..300,
        lanes in 1usize..70,
        seed in 0u64..500,
    ) {
        let n = graph.num_neurons();
        let topo = Mesh2D::for_crossbars(crossbars);
        let lut = DistanceLut::new(&topo);
        let problem = PartitionProblem::new(&graph, crossbars, n)
            .unwrap()
            .with_hops(&lut)
            .unwrap();
        let evaluator = SwarmEval::new(problem, FitnessKind::CutHops);
        // ≤ 256 rides the byte tile, 257..=1024 the word tile — batched
        // either way across this whole corpus
        prop_assert!(evaluator.batched(), "c={} fell back to scalar", crossbars);
        let mut rng = StdRng::seed_from_u64(seed);
        let positions: Vec<u32> = (0..lanes * n as usize)
            .map(|_| rng.gen_range(0..crossbars as u32))
            .collect();
        let mut out = vec![0u64; lanes];
        evaluator.eval_swarm(&positions, lanes, &mut SwarmScratch::default(), &mut out);
        for lane in 0..lanes {
            let row = &positions[lane * n as usize..(lane + 1) * n as usize];
            prop_assert_eq!(out[lane], problem.cut_hops(row), "c={} lane {}", crossbars, lane);
        }
    }

    // ---- place: swap deltas == reference, thread determinism ----------

    #[test]
    fn place_swap_delta_matches_reference(
        crossbars in 2usize..24,
        topo_idx in 0u8..8,
        seed in 0u64..1000,
        swaps in proptest::collection::vec((0u16..24, 0u16..24), 1..40),
    ) {
        let topo = topology_for(topo_idx, crossbars);
        let lut = DistanceLut::new(topo.as_ref());
        let mut rng = StdRng::seed_from_u64(seed);
        let packets: Vec<u64> = (0..crossbars * crossbars)
            .enumerate()
            .map(|(i, _)| if i % (crossbars + 1) == 0 { 0 } else { rng.gen_range(0..40u64) })
            .collect();
        let traffic = TrafficMatrix::from_raw(crossbars, packets);
        let mut perm: Vec<u32> = (0..crossbars as u32).collect();
        let mut cost = placement_cost(&traffic, &lut, &perm) as i64;
        for &(x, y) in &swaps {
            let (a, b) = ((x as usize) % crossbars, (y as usize) % crossbars);
            let d = swap_delta(&traffic, &lut, &perm, a, b);
            perm.swap(a, b);
            cost += d;
            prop_assert_eq!(
                cost as u64,
                placement_cost(&traffic, &lut, &perm),
                "swap delta drifted ({})", topo.name()
            );
        }
    }

    #[test]
    fn place_optimizer_thread_invariant_and_never_worse_than_identity(
        graph in arb_graph(30),
        crossbars in 2usize..12,
        topo_idx in 0u8..8,
        seed in 0u64..200,
    ) {
        let n = graph.num_neurons();
        let topo = topology_for(topo_idx, crossbars);
        let lut = DistanceLut::new(topo.as_ref());
        let mut rng = StdRng::seed_from_u64(seed);
        let assign: Vec<u32> = (0..n).map(|_| rng.gen_range(0..crossbars as u32)).collect();
        let mapping = Mapping::from_assignment(assign, crossbars).unwrap();
        let traffic = TrafficMatrix::from_mapping(&graph, &mapping, TrafficMode::PerCrossbar);
        let cfg = PlaceConfig {
            restarts: 3,
            sa_moves: 200,
            greedy_passes: 4,
            threads: 1,
            ..PlaceConfig::default()
        };
        let one = optimize_placement(&traffic, &lut, &cfg).unwrap();
        prop_assert!(one.optimized_cost <= one.identity_cost);
        prop_assert_eq!(
            placement_cost(&traffic, &lut, one.placement.as_slice()),
            one.optimized_cost
        );
        // placement composes losslessly into the mapping
        let placed = mapping.place(&one.placement).unwrap();
        for i in 0..n {
            prop_assert_eq!(
                placed.crossbar_of(i),
                one.placement.physical_of(mapping.crossbar_of(i))
            );
        }
        for threads in [2usize, 5] {
            let multi = optimize_placement(&traffic, &lut, &PlaceConfig { threads, ..cfg }).unwrap();
            prop_assert_eq!(&one, &multi, "threads={}", threads);
        }
    }

    /// The restart chunking must be invisible in the output for *every*
    /// thread count, explicitly including `threads > restarts` — the
    /// regime where the old ceil-division chunking spawned workers with
    /// empty `lo >= hi` ranges.
    #[test]
    fn place_chunking_is_thread_invariant_beyond_restart_count(
        crossbars in 2usize..16,
        topo_idx in 0u8..8,
        restarts in 1u32..6,
        seed in 0u64..500,
    ) {
        let topo = topology_for(topo_idx, crossbars);
        let lut = DistanceLut::new(topo.as_ref());
        let mut rng = StdRng::seed_from_u64(seed);
        let packets: Vec<u64> = (0..crossbars * crossbars)
            .enumerate()
            .map(|(i, _)| if i % (crossbars + 1) == 0 { 0 } else { rng.gen_range(0..40u64) })
            .collect();
        let traffic = TrafficMatrix::from_raw(crossbars, packets);
        let cfg = PlaceConfig {
            restarts,
            sa_moves: 150,
            greedy_passes: 3,
            threads: 1,
            ..PlaceConfig::default()
        };
        let one = optimize_placement(&traffic, &lut, &cfg).unwrap();
        let r = restarts as usize;
        for threads in [2usize, r.max(1), r + 1, 2 * r + 3, 16] {
            let multi = optimize_placement(&traffic, &lut, &PlaceConfig { threads, ..cfg }).unwrap();
            prop_assert_eq!(&one, &multi, "threads={} restarts={}", threads, restarts);
        }
    }
}

// ---- acceptance: identity vs optimized placement, end to end ---------

/// Runs identity vs hop-optimized placement for one scenario/fabric and
/// asserts the acceptance criteria: strictly fewer hop-weighted packets,
/// strictly less simulated NoC energy, and lower average latency, with
/// cut packets invariant.
fn assert_placement_improves(scenario: &LargeArch, kind: InterconnectKind, fabric: &str) {
    let graph = scenario.spike_graph(2018).expect("scenario builds");
    let arch = Architecture::custom(scenario.num_crossbars(), scenario.capacity(), kind).unwrap();
    let mut cfg = PipelineConfig::for_arch(arch).with_traffic(TrafficMode::PerCrossbar);
    // multicast AER + deep FIFOs: the torus's wraparound rings are not
    // deadlock-free under dimension-order routing with shallow buffers
    cfg.noc.cycles_per_step = 8192;
    cfg.noc.buffer_depth = 64;
    let identity = MappingPipeline::new(cfg);
    let optimized = identity.with_placement(PlacementStrategy::HopOptimized(PlaceConfig {
        restarts: 2,
        threads: 1,
        ..PlaceConfig::default()
    }));

    // the shared grid-oblivious scenario (same seed as the eval bench's
    // placement gate, so bench and acceptance test exercise one case)
    let mapping = scenario.scrambled_packed_mapping(0x91A);
    let (id_m, id_p, _) = identity.place(&graph, &mapping).unwrap();
    assert!(id_p.is_identity());
    let (opt_m, opt_p, label) = optimized.place(&graph, &mapping).unwrap();
    assert_eq!(label, "hop-optimized");
    assert_eq!(opt_m, mapping.place(&opt_p).unwrap());

    let r_id = identity.evaluate(&graph, id_m, "packed").unwrap();
    let r_opt = optimized
        .evaluate_as(&graph, opt_m, "packed", &label)
        .unwrap();
    assert_eq!(r_id.placement, "identity", "{fabric}");
    assert_eq!(r_opt.placement, "hop-optimized", "{fabric}");

    // the partition is untouched: cut metrics and delivered packets match
    assert_eq!(r_id.cut_spikes, r_opt.cut_spikes, "{fabric}");
    assert_eq!(r_id.noc.delivered, r_opt.noc.delivered, "{fabric}");
    // placement strictly reduces the hop-weighted objective...
    assert!(
        r_opt.hop_weighted_packets < r_id.hop_weighted_packets,
        "{fabric}: hop-weighted packets {} !< {}",
        r_opt.hop_weighted_packets,
        r_id.hop_weighted_packets
    );
    assert!(r_opt.avg_hops < r_id.avg_hops, "{fabric}");
    // ...and the simulated NoC energy and latency follow
    assert!(
        r_opt.global_energy_pj < r_id.global_energy_pj,
        "{fabric}: NoC energy {} !< {}",
        r_opt.global_energy_pj,
        r_id.global_energy_pj
    );
    assert!(
        r_opt.noc.avg_latency_cycles < r_id.noc.avg_latency_cycles,
        "{fabric}: avg latency {} !< {}",
        r_opt.noc.avg_latency_cycles,
        r_id.noc.avg_latency_cycles
    );
}

#[test]
fn placement_improves_the_64_crossbar_mesh_and_torus() {
    let scenario = LargeArch {
        side: 8,
        neurons_per_crossbar: 8,
        synapses_per_neuron: 24,
        fill_percent: 85,
    };
    assert_placement_improves(&scenario, InterconnectKind::Mesh, "mesh64");
    assert_placement_improves(&scenario, InterconnectKind::Torus, "torus64");
}

#[test]
fn placement_improves_the_256_crossbar_grid() {
    let scenario = LargeArch::grid16();
    assert_placement_improves(&scenario, InterconnectKind::Mesh, "mesh256");
    assert_placement_improves(&scenario, InterconnectKind::Torus, "torus256");
}

#[test]
fn pso_partition_also_benefits_from_placement() {
    // not just the synthetic scramble: a real PSO partition on the
    // 64-crossbar mesh must not get worse under hop-optimized placement,
    // and the reported placement id must round-trip
    use neuromap::core::pso::{PsoConfig, PsoPartitioner};
    let scenario = LargeArch {
        side: 8,
        neurons_per_crossbar: 8,
        synapses_per_neuron: 24,
        fill_percent: 85,
    };
    let graph = scenario.spike_graph(7).unwrap();
    let arch = Architecture::custom(64, 8, InterconnectKind::Mesh).unwrap();
    let mut cfg = PipelineConfig::for_arch(arch).with_traffic(TrafficMode::PerCrossbar);
    cfg.noc.cycles_per_step = 8192;
    let pipeline = MappingPipeline::new(cfg);
    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 6,
        iterations: 3,
        fitness: FitnessKind::CutPackets,
        seed_baselines: false,
        polish_passes: 0,
        threads: 1,
        ..PsoConfig::default()
    });
    let mapping = pipeline.partition(&graph, &pso).unwrap();
    let optimized = pipeline.with_placement(PlacementStrategy::HopOptimized(PlaceConfig {
        restarts: 2,
        threads: 1,
        ..PlaceConfig::default()
    }));
    let (opt_m, _, label) = optimized.place(&graph, &mapping).unwrap();
    let r_id = pipeline.evaluate(&graph, mapping, "pso").unwrap();
    let r_opt = optimized.evaluate_as(&graph, opt_m, "pso", &label).unwrap();
    assert!(r_opt.hop_weighted_packets <= r_id.hop_weighted_packets);
    assert_eq!(r_id.cut_spikes, r_opt.cut_spikes);
    let json = serde_json::to_string(&r_opt).unwrap();
    assert!(json.contains("\"hop_weighted_packets\""));
    assert!(json.contains("\"avg_hops\""));
    assert!(json.contains("\"placement\":\"hop-optimized\""));
}
