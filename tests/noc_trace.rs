//! Golden trace: the structured event trace of a small fixed workload,
//! exported through the Perfetto formatter, pinned byte-for-byte against
//! `tests/golden/trace_small.json`.
//!
//! This freezes two things at once: the event stream the engines emit
//! (order, fields, cycle stamps) and the exporter's exact output format
//! (what a trace viewer ingests). A diff here means tracing semantics or
//! the export format drifted — if the change is intentional, regenerate
//! with `NEUROMAP_REGEN_GOLDEN=1 cargo test --test noc_trace` and commit
//! the new file alongside the change that explains it.

use neuromap::hw::energy::EnergyModel;
use neuromap::noc::config::NocConfig;
use neuromap::noc::sim::oracle::CycleSim;
use neuromap::noc::sim::NocSim;
use neuromap::noc::topology::Mesh2D;
use neuromap::noc::traffic::SpikeFlow;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_small.json");

/// Small deterministic workload: a multicast storm on an 8-crossbar
/// mesh, busy enough to exercise every event kind (including
/// blocked-on-credit spans — depth 1 guarantees stalls) while keeping
/// the golden file reviewable.
fn small_workload() -> Vec<SpikeFlow> {
    let crossbars = 8u32;
    let mut flows = Vec::new();
    for step in 0..3 {
        for src in 0..crossbars {
            flows.push(SpikeFlow::multicast(
                src * 31 + step,
                src,
                vec![(src + 1) % crossbars, (src + 3) % crossbars],
                step,
            ));
        }
    }
    flows
}

#[test]
fn small_trace_matches_golden_perfetto_export() {
    let cfg = NocConfig {
        buffer_depth: 1,
        trace: true,
        ..NocConfig::default()
    };
    let flows = small_workload();

    let mut event = NocSim::new(
        Box::new(Mesh2D::for_crossbars(8)),
        cfg,
        EnergyModel::default(),
    );
    event.run_with_duration(&flows, 3).expect("event drains");
    let trace = event.take_trace().expect("tracing was on");

    let mut oracle = CycleSim::new(
        Box::new(Mesh2D::for_crossbars(8)),
        cfg,
        EnergyModel::default(),
    );
    oracle.run_with_duration(&flows, 3).expect("oracle drains");
    let oracle_trace = oracle.take_trace().expect("tracing was on");
    assert_eq!(
        trace.to_bytes(),
        oracle_trace.to_bytes(),
        "engines must emit byte-identical event streams"
    );

    // the trace must cover every event kind, or the golden is too weak
    // to pin anything
    use neuromap::noc::trace::TraceEvent;
    let mut kinds = [false; 6];
    for e in trace.events() {
        kinds[match e {
            TraceEvent::Injected { .. } => 0,
            TraceEvent::Enqueued { .. } => 1,
            TraceEvent::Forwarded { .. } => 2,
            TraceEvent::Dequeued { .. } => 3,
            TraceEvent::Delivered { .. } => 4,
            TraceEvent::BlockedOnCredit { .. } => 5,
        }] = true;
    }
    assert!(
        kinds.iter().all(|&k| k),
        "workload must exercise every event kind, got {kinds:?}"
    );

    let rendered = trace.to_perfetto_json();
    if std::env::var_os("NEUROMAP_REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        eprintln!("regenerated {GOLDEN_PATH} ({} bytes)", rendered.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists — regenerate with NEUROMAP_REGEN_GOLDEN=1");
    assert_eq!(
        rendered, golden,
        "Perfetto export drifted from tests/golden/trace_small.json; \
         if intentional, regenerate with NEUROMAP_REGEN_GOLDEN=1"
    );
}
