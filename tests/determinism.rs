//! Reproducibility across the whole stack: with a fixed seed, every stage
//! — SNN simulation, graph extraction, partitioning, interconnect
//! simulation — must produce bit-identical results run to run.

use neuromap::apps::{heartbeat::HeartbeatEstimation, synthetic::Synthetic, App};
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::{run_pipeline, PipelineConfig, Report};
use neuromap::hw::arch::{Architecture, InterconnectKind};

fn full_run(seed: u64, threads: usize) -> Report {
    let app = Synthetic {
        steps: 250,
        ..Synthetic::new(2, 20)
    };
    let graph = app.spike_graph(seed).expect("app simulates");
    let arch = Architecture::custom(4, 14, InterconnectKind::Tree { arity: 2 }).unwrap();
    let cfg = PipelineConfig::for_arch(arch);
    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 16,
        iterations: 12,
        seed: seed ^ 0xBEEF,
        threads,
        ..PsoConfig::default()
    });
    run_pipeline(&graph, &pso, &cfg).expect("pipeline runs")
}

#[test]
fn identical_seeds_identical_reports() {
    let a = full_run(42, 1);
    let b = full_run(42, 1);
    assert_eq!(a, b);
}

#[test]
fn thread_count_does_not_change_results() {
    let a = full_run(42, 1);
    let b = full_run(42, 4);
    assert_eq!(a, b, "fitness threading must be bit-deterministic");
}

#[test]
fn different_seeds_differ() {
    let a = full_run(1, 1);
    let b = full_run(2, 1);
    assert_ne!(a.noc, b.noc, "different stimuli should differ somewhere");
}

#[test]
fn application_graphs_are_reproducible() {
    let app = HeartbeatEstimation {
        duration_ms: 1500,
        ..HeartbeatEstimation::default()
    };
    let a = app.spike_graph(7).expect("runs");
    let b = app.spike_graph(7).expect("runs");
    assert_eq!(a, b);
}
