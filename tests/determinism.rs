//! Reproducibility across the whole stack: with a fixed seed, every stage
//! — SNN simulation, graph extraction, partitioning, interconnect
//! simulation — must produce bit-identical results run to run, and the
//! lane-parallel PSO re-binarization/repair kernel must be bit-identical
//! to its scalar reference for any thread count and velocity state.

use neuromap::apps::synthetic::LargeArch;
use neuromap::apps::{heartbeat::HeartbeatEstimation, synthetic::Synthetic, App};
use neuromap::core::decode::{DecodeScratch, Decoder, StepWeights};
use neuromap::core::partition::{FitnessKind, PartitionProblem};
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::{run_pipeline, PipelineConfig, Report};
use neuromap::hw::arch::{Architecture, InterconnectKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;

fn full_run(seed: u64, threads: usize) -> Report {
    let app = Synthetic {
        steps: 250,
        ..Synthetic::new(2, 20)
    };
    let graph = app.spike_graph(seed).expect("app simulates");
    let arch = Architecture::custom(4, 14, InterconnectKind::Tree { arity: 2 }).unwrap();
    let cfg = PipelineConfig::for_arch(arch);
    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 16,
        iterations: 12,
        seed: seed ^ 0xBEEF,
        threads,
        ..PsoConfig::default()
    });
    run_pipeline(&graph, &pso, &cfg).expect("pipeline runs")
}

#[test]
fn identical_seeds_identical_reports() {
    let a = full_run(42, 1);
    let b = full_run(42, 1);
    assert_eq!(a, b);
}

#[test]
fn thread_count_does_not_change_results() {
    let a = full_run(42, 1);
    let b = full_run(42, 4);
    assert_eq!(a, b, "fitness threading must be bit-deterministic");
}

#[test]
fn different_seeds_differ() {
    let a = full_run(1, 1);
    let b = full_run(2, 1);
    assert_ne!(a.noc, b.noc, "different stimuli should differ somewhere");
}

/// Random velocities with frequent exact ties: half the draws are
/// quantized to a coarse 0.5 grid and everything is clamped to the
/// domain edge, so tie-breaking between equal maxima is exercised
/// constantly.
fn tie_heavy_velocities(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.5) {
                (rng.gen_range(-10i32..=10) as f32) * 0.5
            } else {
                rng.gen_range(-6.0f32..6.0)
            }
            .clamp(-4.0, 4.0)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(48)))]

    #[test]
    fn lane_parallel_repair_matches_scalar_kernel(
        n in 1usize..40,
        c in 1usize..300,
        cap_slack in 0u32..20,
        vel_seed in 0u64..10_000,
        rng_seed in 0u64..10_000,
    ) {
        let cap = (n as u32).div_ceil(c as u32) + cap_slack;
        let decoder = Decoder::new(n, c, cap, 4.0);
        let velocity = tie_heavy_velocities(n * c, vel_seed);
        let mut rng_a = StdRng::seed_from_u64(rng_seed);
        let mut rng_b = StdRng::seed_from_u64(rng_seed);
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        decoder.decode(&velocity, &mut rng_a, &mut a, &mut DecodeScratch::default());
        decoder.decode_reference(&velocity, &mut rng_b, &mut b, &mut DecodeScratch::default());
        prop_assert_eq!(&a, &b, "repair diverged (n={}, c={})", n, c);
        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG streams diverged");
        // the decoded assignment is always capacity-feasible
        let mut occ = vec![0u32; c];
        for &k in &a { occ[k as usize] += 1; }
        prop_assert!(occ.iter().all(|&o| o <= cap));
    }

    #[test]
    fn fused_step_matches_scalar_kernel(
        n in 1usize..30,
        c in 1usize..200,
        inertia in 0.5f32..1.2,
        vel_seed in 0u64..10_000,
        rng_seed in 0u64..10_000,
    ) {
        let cap = (n as u32).div_ceil(c as u32) + 3;
        let decoder = Decoder::new(n, c, cap, 4.0);
        let w = StepWeights { inertia, phi_p: 1.49, phi_g: 1.49 };
        let mut pick = StdRng::seed_from_u64(vel_seed ^ 0xABC);
        let pos: Vec<u32> = (0..n).map(|_| pick.gen_range(0..c as u32)).collect();
        let pbest: Vec<u32> = (0..n).map(|_| pick.gen_range(0..c as u32)).collect();
        let gbest: Vec<u32> = (0..n).map(|_| pick.gen_range(0..c as u32)).collect();
        let velocity = tie_heavy_velocities(n * c, vel_seed);
        let (mut va, mut vb) = (velocity.clone(), velocity);
        let (mut pa, mut pb) = (pos.clone(), pos);
        let mut rng_a = StdRng::seed_from_u64(rng_seed);
        let mut rng_b = StdRng::seed_from_u64(rng_seed);
        decoder.step(w, &mut va, &mut rng_a, &mut pa, &pbest, &gbest,
            &mut DecodeScratch::default());
        decoder.step_reference(w, &mut vb, &mut rng_b, &mut pb, &pbest, &gbest,
            &mut DecodeScratch::default());
        prop_assert_eq!(pa, pb, "assignments diverged (n={}, c={})", n, c);
        prop_assert_eq!(va, vb, "velocities diverged");
        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG streams diverged");
    }

    #[test]
    fn pso_repair_thread_counts_bit_identical_at_large_arch(
        seed in 0u64..500,
        swarm in 4usize..10,
        iterations in 2u32..6,
    ) {
        // 81 crossbars: the multi-word envelope; threads 1/2/4 must yield
        // byte-identical mappings and traces
        let scenario = LargeArch {
            side: 9,
            neurons_per_crossbar: 4,
            synapses_per_neuron: 6,
            fill_percent: 75,
        };
        let graph = scenario.spike_graph(seed).expect("scenario builds");
        let problem = PartitionProblem::new(
            &graph, scenario.num_crossbars(), scenario.capacity(),
        ).expect("feasible");
        let base = PsoConfig {
            swarm_size: swarm,
            iterations,
            seed: seed ^ 0xD15C,
            fitness: FitnessKind::CutPackets,
            seed_baselines: false,
            polish_passes: 0,
            threads: 1,
            ..PsoConfig::default()
        };
        let (m1, t1) = PsoPartitioner::new(base)
            .partition_traced(&problem).expect("runs");
        for threads in [2usize, 4] {
            let cfg = PsoConfig { threads, ..base };
            let (m, t) = PsoPartitioner::new(cfg)
                .partition_traced(&problem).expect("runs");
            prop_assert_eq!(&m1, &m, "mapping changed with {} threads", threads);
            prop_assert_eq!(&t1, &t, "trace changed with {} threads", threads);
        }
    }
}

#[test]
fn application_graphs_are_reproducible() {
    let app = HeartbeatEstimation {
        duration_ms: 1500,
        ..HeartbeatEstimation::default()
    };
    let a = app.spike_graph(7).expect("runs");
    let b = app.spike_graph(7).expect("runs");
    assert_eq!(a, b);
}
