//! Property-based tests over the hardware model: AER round trips, mapping
//! algebra, architecture derivation, and energy-model serialization.

use neuromap::hw::aer::{address_bits, decode_stream, encode_stream, flits_for, AerEvent};
use neuromap::hw::arch::{Architecture, InterconnectKind};
use neuromap::hw::energy::EnergyModel;
use neuromap::hw::mapping::Mapping;
use proptest::prelude::*;

mod common;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(64)))]

    #[test]
    fn aer_pack_roundtrip(source in any::<u32>(), timestamp in any::<u32>()) {
        let e = AerEvent::new(source, timestamp);
        prop_assert_eq!(AerEvent::unpack(e.pack()), e);
    }

    #[test]
    fn aer_stream_roundtrip(
        trains in proptest::collection::vec(
            proptest::collection::vec(0u32..10_000, 0..30),
            1..10
        ),
    ) {
        let ids: Vec<u32> = (0..trains.len() as u32).collect();
        // dedup + sort each train the way SpikeTrain would
        let canon: Vec<Vec<u32>> = trains
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let slices: Vec<&[u32]> = canon.iter().map(|t| t.as_slice()).collect();
        let stream = encode_stream(&ids, &slices);
        // chronological order
        prop_assert!(stream.windows(2).all(|w| w[0] <= w[1]));
        // decode reproduces exactly the non-empty trains
        let decoded = decode_stream(&stream);
        let expected: Vec<(u32, Vec<u32>)> = ids
            .iter()
            .zip(&canon)
            .filter(|(_, t)| !t.is_empty())
            .map(|(&i, t)| (i, t.clone()))
            .collect();
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn address_bits_suffice(n in 1u32..1_000_000) {
        let bits = address_bits(n);
        prop_assert!(1u64 << bits >= n as u64, "{bits} bits for {n}");
        if n > 2 {
            prop_assert!(1u64 << (bits - 1) < n as u64, "{bits} bits wasteful for {n}");
        }
    }

    #[test]
    fn flit_count_covers_payload(payload in 0u32..10_000, width in 1u32..512) {
        let flits = flits_for(payload, width);
        prop_assert!(flits * width >= payload);
        prop_assert!(flits >= 1);
    }

    #[test]
    fn mapping_occupancy_sums_to_neuron_count(
        assignment in proptest::collection::vec(0u32..6, 1..100),
    ) {
        let m = Mapping::from_assignment(assignment.clone(), 6).expect("in range");
        let occ = m.occupancy();
        prop_assert_eq!(occ.iter().sum::<usize>(), assignment.len());
        // the CSR index agrees with occupancy, stays in ascending id
        // order, and partitions the neuron set
        let mut covered = 0usize;
        for k in 0..6u32 {
            let on = m.neurons_on(k);
            prop_assert_eq!(on.len(), occ[k as usize]);
            prop_assert!(on.windows(2).all(|w| w[0] < w[1]), "id order");
            prop_assert!(on.iter().all(|&i| m.crossbar_of(i) == k));
            covered += on.len();
        }
        prop_assert_eq!(covered, assignment.len());
    }

    #[test]
    fn placement_composition_preserves_mapping_structure(
        assignment in proptest::collection::vec(0u32..8, 1..80),
        perm_seed in 0u64..1000,
    ) {
        use neuromap::hw::mapping::Placement;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let m = Mapping::from_assignment(assignment, 8).expect("in range");
        let mut rng = StdRng::seed_from_u64(perm_seed);
        let mut phys: Vec<u32> = (0..8).collect();
        for a in (1..8usize).rev() {
            let b = rng.gen_range(0..a + 1);
            phys.swap(a, b);
        }
        let p = Placement::new(phys).expect("permutation");
        let placed = m.place(&p).expect("same crossbar count");
        // per-neuron composition, occupancy permutation, inverse undo
        let occ = m.occupancy();
        let pocc = placed.occupancy();
        for i in 0..m.num_neurons() as u32 {
            prop_assert_eq!(placed.crossbar_of(i), p.physical_of(m.crossbar_of(i)));
        }
        for k in 0..8u32 {
            prop_assert_eq!(pocc[p.physical_of(k) as usize], occ[k as usize]);
            prop_assert_eq!(placed.neurons_on(p.physical_of(k)), m.neurons_on(k));
        }
        let undone = placed.place(&p.inverse()).expect("same crossbar count");
        prop_assert_eq!(&undone, &m);
        let double_inverse = p.inverse().inverse();
        prop_assert_eq!(double_inverse.as_slice(), p.as_slice());
    }

    #[test]
    fn classify_partitions_synapses(
        assignment in proptest::collection::vec(0u32..4, 2..40),
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let n = assignment.len();
        let m = Mapping::from_assignment(assignment, 4).expect("in range");
        let synapses: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(a, b)| a < n && b < n)
            .map(|(a, b)| (a as u32, b as u32))
            .collect();
        let (local, global) = m.classify_synapses(&synapses);
        prop_assert_eq!(local.len() + global.len(), synapses.len());
        prop_assert!(local.iter().all(|&(a, b)| m.is_local(a, b)));
        prop_assert!(global.iter().all(|&(a, b)| !m.is_local(a, b)));
    }

    #[test]
    fn derived_architectures_always_fit(total in 1u32..5_000, npc in 1u32..2_000) {
        let base = Architecture::cxquad();
        let arch = base.with_crossbar_size(npc, total).expect("valid sizes");
        prop_assert!(arch.fits(total as u64));
        prop_assert_eq!(arch.neurons_per_crossbar(), npc);
        prop_assert_eq!(arch.interconnect(), base.interconnect());
    }

    #[test]
    fn energy_model_json_roundtrip(
        local in 0.0f64..100.0,
        hop in 0.0f64..100.0,
        link in 0.0f64..100.0,
    ) {
        let m = EnergyModel {
            local_synapse_pj: local,
            router_hop_pj: hop,
            link_flit_pj: link,
            ..EnergyModel::default()
        };
        let back = EnergyModel::from_json(&m.to_json()).expect("valid model");
        prop_assert_eq!(m, back);
    }

    #[test]
    fn packet_energy_monotone_in_hops(hops in 0u32..64, flits in 1u32..16) {
        let m = EnergyModel::default();
        prop_assert!(m.packet_pj(hops + 1, flits, 0) >= m.packet_pj(hops, flits, 0));
        prop_assert!(m.packet_pj(hops, flits + 1, 0) >= m.packet_pj(hops, flits, 0));
    }

    #[test]
    fn local_event_energy_scales_with_dimension(dim in 1u32..4096) {
        let m = EnergyModel::default();
        let e = m.local_event_pj(dim);
        prop_assert!((e - m.local_synapse_pj * dim as f64 / 128.0).abs() < 1e-9);
    }
}

#[test]
fn mapping_validate_agrees_with_is_local_partition() {
    let arch = Architecture::custom(3, 4, InterconnectKind::Mesh).unwrap();
    let m = Mapping::from_assignment(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
    assert!(m.validate(&arch).is_ok());
    assert!(m.is_local(0, 1));
    assert!(!m.is_local(1, 2));
}
