//! Property tests over the hierarchical multi-chip fabric
//! ([`HierTopology`]).
//!
//! Four layers:
//!
//! * **Degenerate-hierarchy byte identity** — a 1-chip fabric must be
//!   indistinguishable from the flat topology it nests: byte-identical
//!   serialized statistics, digests, delivery logs, and structured trace
//!   bytes on the differential corpus, for both mesh and torus intra
//!   fabrics, across VC counts / FIFO depths / multicast settings.
//! * **Multi-chip routing soundness** — `check_routes` +
//!   `check_vc_channel_dependencies` + `check_vc_tree_dependencies`
//!   across chip grids, intra fabrics, and VC counts: every route
//!   converges hop by hop, and the VC channel-dependency graph stays
//!   acyclic across chip-boundary links (multi-chip routing never uses
//!   torus wrap links, which is what makes this provable).
//! * **Weighted distances** — the fabric's nested [`DistanceLut`] is
//!   symmetric, zero on the diagonal, and dominates the unweighted hop
//!   count (chip seams priced `link_latency × link_width`).
//! * **Multi-chip differential** — the event engine and the cycle
//!   oracle must byte-agree on hierarchical fabrics, exactly like the
//!   flat corpus in `tests/noc_properties.rs`.
//!
//! `NEUROMAP_PROPTEST_CASES` overrides the per-test case count (CI runs
//! a 256-case pass over this suite; see `scripts/verify.sh`).

use neuromap::hw::energy::EnergyModel;
use neuromap::noc::config::NocConfig;
use neuromap::noc::sim::oracle::CycleSim;
use neuromap::noc::sim::NocSim;
use neuromap::noc::topology::{
    check_routes, check_vc_channel_dependencies, check_vc_tree_dependencies, HierTopology, Mesh2D,
    Topology, Torus,
};
use neuromap::noc::traffic::SpikeFlow;
use proptest::prelude::*;
use proptest::TestCaseResult;

mod common;

/// Crossbar count of the 1-chip corpus (a 4 × 4 intra grid).
const CROSSBARS: u32 = 16;

fn arb_flows(max_flows: usize) -> impl Strategy<Value = Vec<SpikeFlow>> {
    proptest::collection::vec(
        (
            0u32..1000,      // source neuron
            0u32..CROSSBARS, // src crossbar
            proptest::collection::vec(0u32..CROSSBARS, 1..5),
            0u32..4, // send step
        ),
        0..max_flows,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(neuron, src, dsts, step)| SpikeFlow::multicast(neuron, src, dsts, step))
            .collect()
    })
}

/// The flat topology and its 1-chip hierarchical twin (same intra grid;
/// the boundary-link parameters are irrelevant at one chip but kept
/// non-trivial so delegation, not luck, produces the identity).
fn one_chip_pair(mesh: bool) -> (Box<dyn Topology>, Box<dyn Topology>) {
    if mesh {
        (
            Box::new(Mesh2D::grid(4, 4, CROSSBARS as usize)),
            Box::new(HierTopology::mesh(1, 1, 4, 4, CROSSBARS as usize, 3, 2).expect("valid")),
        )
    } else {
        (
            Box::new(Torus::grid(4, 4, CROSSBARS as usize)),
            Box::new(HierTopology::torus(1, 1, 4, 4, CROSSBARS as usize, 3, 2).expect("valid")),
        )
    }
}

/// Runs the event engine on two topologies and asserts byte-identical
/// outcomes: delivery logs, serialized stats, digests — and, in a
/// second traced run, the structured trace bytes.
fn assert_topologies_identical(
    flat: Box<dyn Topology>,
    hier: Box<dyn Topology>,
    cfg: NocConfig,
    flows: &[SpikeFlow],
    duration: u32,
) -> TestCaseResult {
    let name = format!("{} vs {} vc={}", flat.name(), hier.name(), cfg.vc_count);
    let mut on_flat = NocSim::new(flat, cfg, EnergyModel::default());
    let mut on_hier = NocSim::new(hier, cfg, EnergyModel::default());
    let fr = on_flat.run_with_duration(flows, duration);
    let hr = on_hier.run_with_duration(flows, duration);
    match (fr, hr) {
        (Ok((fs, fd)), Ok((hs, hd))) => {
            prop_assert_eq!(&fd, &hd, "{}: delivery logs diverge", &name);
            let fj = serde_json::to_string(&fs).expect("stats serialize");
            let hj = serde_json::to_string(&hs).expect("stats serialize");
            prop_assert_eq!(&fj, &hj, "{}: stats bytes diverge", &name);
            prop_assert_eq!(
                fs.digest().unwrap(),
                hs.digest().unwrap(),
                "{}: digests diverge",
                &name
            );
        }
        (fr, hr) => {
            prop_assert_eq!(
                format!("{fr:?}"),
                format!("{hr:?}"),
                "{}: outcomes diverge",
                &name
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::cases(24)))]

    /// A 1-chip hierarchy is the flat topology, byte for byte: same
    /// delivery logs, same serialized stats, same digests.
    #[test]
    fn one_chip_fabric_is_byte_identical_to_flat(
        flows in arb_flows(40),
        mesh in any::<bool>(),
        vc in 1usize..3,
        depth in 1usize..4,
        multicast in any::<bool>(),
    ) {
        let cfg = NocConfig {
            buffer_depth: depth,
            vc_count: vc,
            multicast,
            ..NocConfig::default()
        };
        let (flat, hier) = one_chip_pair(mesh);
        assert_topologies_identical(flat, hier, cfg, &flows, 8)?;
    }

    /// …and with tracing on, the structured event trace is also byte
    /// identical (the trace records router/port/VC of every event, so
    /// this pins the delegation down to per-hop detail).
    #[test]
    fn one_chip_fabric_trace_bytes_match_flat(
        flows in arb_flows(24),
        mesh in any::<bool>(),
        vc in 1usize..3,
    ) {
        let cfg = NocConfig {
            vc_count: vc,
            multicast: true,
            trace: true,
            ..NocConfig::default()
        };
        let (flat, hier) = one_chip_pair(mesh);
        let mut on_flat = NocSim::new(flat, cfg, EnergyModel::default());
        let mut on_hier = NocSim::new(hier, cfg, EnergyModel::default());
        let fr = on_flat.run_with_duration(&flows, 8);
        let hr = on_hier.run_with_duration(&flows, 8);
        prop_assert_eq!(format!("{:?}", fr.is_ok()), format!("{:?}", hr.is_ok()));
        if fr.is_ok() {
            let ft = on_flat.take_trace().expect("tracing was on");
            let ht = on_hier.take_trace().expect("tracing was on");
            prop_assert_eq!(
                ft.to_bytes(),
                ht.to_bytes(),
                "trace bytes diverge between flat and 1-chip fabrics"
            );
        }
    }

    /// Multi-chip routes converge and the VC channel-dependency graph is
    /// acyclic at every VC count — including torus intra fabrics, whose
    /// wrap links multi-chip routing must never touch.
    #[test]
    fn multi_chip_routes_converge_and_vcs_stay_acyclic(
        chip_cols in 1usize..4,
        chip_rows in 1usize..3,
        intra_cols in 2usize..4,
        intra_rows in 2usize..4,
        torus in any::<bool>(),
        latency in 1u32..5,
        width in 1u32..3,
        vc in 1usize..4,
        raw_groups in proptest::collection::vec(
            (0u32..64, proptest::collection::vec(0u32..64, 1..5)),
            0..6,
        ),
    ) {
        prop_assume!(chip_cols * chip_rows > 1);
        let crossbars = chip_cols * chip_rows * intra_cols * intra_rows;
        let topo = if torus {
            HierTopology::torus(chip_cols, chip_rows, intra_cols, intra_rows, crossbars, latency, width)
        } else {
            HierTopology::mesh(chip_cols, chip_rows, intra_cols, intra_rows, crossbars, latency, width)
        }.expect("valid fabric");
        let nr = topo.num_routers();
        prop_assert!(check_routes(&topo).is_ok(), "{:?}", check_routes(&topo));
        let deps = check_vc_channel_dependencies(&topo, vc);
        prop_assert!(deps.is_ok(), "{:?}", deps);
        let groups: Vec<(usize, Vec<usize>)> = raw_groups
            .into_iter()
            .map(|(src, dests)| (
                src as usize % nr,
                dests.into_iter().map(|d| d as usize % nr).collect(),
            ))
            .collect();
        let tree_deps = check_vc_tree_dependencies(&topo, vc, &groups);
        prop_assert!(tree_deps.is_ok(), "{:?}", tree_deps);
    }

    /// The nested distance table is symmetric, zero on the diagonal, and
    /// dominates the unweighted hop count (seams priced latency × width,
    /// both ≥ 1).
    #[test]
    fn weighted_distances_are_sound(
        chip_cols in 1usize..4,
        chip_rows in 1usize..3,
        intra_side in 2usize..4,
        torus in any::<bool>(),
        latency in 1u32..5,
        width in 1u32..3,
    ) {
        let crossbars = chip_cols * chip_rows * intra_side * intra_side;
        let topo = if torus {
            HierTopology::torus(chip_cols, chip_rows, intra_side, intra_side, crossbars, latency, width)
        } else {
            HierTopology::mesh(chip_cols, chip_rows, intra_side, intra_side, crossbars, latency, width)
        }.expect("valid fabric");
        let lut = topo.distance_lut();
        for a in 0..crossbars as u32 {
            for b in 0..crossbars as u32 {
                let d = lut.hops(a, b);
                prop_assert_eq!(d, lut.hops(b, a), "asymmetric at ({}, {})", a, b);
                if a == b {
                    prop_assert_eq!(d, 0);
                } else {
                    prop_assert!(d > 0);
                }
                let raw = topo.hops(topo.endpoint(a), topo.endpoint(b));
                prop_assert!(
                    d >= raw,
                    "weighted {} < raw {} at ({}, {})",
                    d, raw, a, b
                );
            }
        }
    }

    /// The event engine and the cycle oracle byte-agree on multi-chip
    /// fabrics, mirroring the flat differential corpus.
    #[test]
    fn engines_agree_on_multi_chip_fabrics(
        flows in arb_flows(32),
        torus in any::<bool>(),
        vc in 1usize..3,
        depth in 1usize..4,
        latency in 1u32..4,
    ) {
        // 2 × 1 chips of a 2 × 4 grid: 16 crossbars, one seam column
        let crossbars = CROSSBARS as usize;
        let topo = || -> Box<dyn Topology> {
            Box::new(if torus {
                HierTopology::torus(2, 1, 2, 4, crossbars, latency, 2).expect("valid")
            } else {
                HierTopology::mesh(2, 1, 2, 4, crossbars, latency, 2).expect("valid")
            })
        };
        let cfg = NocConfig {
            buffer_depth: depth,
            vc_count: vc,
            multicast: true,
            ..NocConfig::default()
        };
        let mut event = NocSim::new(topo(), cfg, EnergyModel::default());
        let mut oracle = CycleSim::new(topo(), cfg, EnergyModel::default());
        let name = format!("{} vc={}", event.topology().name(), vc);
        let ev = event.run_with_duration(&flows, 8);
        let or = oracle.run_with_duration(&flows, 8);
        match (ev, or) {
            (Ok((es, ed)), Ok((os, od))) => {
                prop_assert_eq!(&ed, &od, "{}: delivery logs diverge", &name);
                let ej = serde_json::to_string(&es).expect("stats serialize");
                let oj = serde_json::to_string(&os).expect("stats serialize");
                prop_assert_eq!(&ej, &oj, "{}: stats bytes diverge", &name);
                prop_assert_eq!(
                    es.digest().unwrap(),
                    os.digest().unwrap(),
                    "{}: digests diverge",
                    &name
                );
            }
            (ev, or) => {
                prop_assert_eq!(
                    format!("{ev:?}"),
                    format!("{or:?}"),
                    "{}: outcomes diverge",
                    &name
                );
            }
        }
    }
}

/// Deterministic end-to-end check: the mapping pipeline on a 1-chip
/// `Hier` architecture reports byte-identically to the flat mesh — the
/// pipeline-level face of the degenerate-hierarchy identity. (The
/// pipeline derives a near-square per-chip mesh, which at one chip is
/// exactly the flat `Mesh` topology.)
#[test]
fn one_chip_hier_pipeline_matches_flat_mesh() {
    use neuromap::core::pipeline::{MappingPipeline, PipelineConfig};
    use neuromap::hw::arch::{Architecture, InterconnectKind};
    use neuromap::hw::mapping::Mapping;

    let flows: Vec<(u32, u32)> = (0..16u32).map(|i| (i, (i * 5 + 3) % 16)).collect();
    let synapses: Vec<(u32, u32)> = flows;
    let counts: Vec<u32> = (0..16).map(|i| (i % 7) + 1).collect();
    let graph = neuromap::core::SpikeGraph::from_parts(16, synapses, counts).expect("valid graph");

    let hier = Architecture::custom(
        16,
        1,
        InterconnectKind::Hier {
            chip_cols: 1,
            chip_rows: 1,
            link_latency: 4,
            link_width: 2,
        },
    )
    .expect("valid arch");
    let flat = Architecture::custom(16, 1, InterconnectKind::Mesh).expect("valid arch");

    let assign: Vec<u32> = (0..16).collect();
    let m = Mapping::from_assignment(assign, 16).expect("valid mapping");
    let r_hier = MappingPipeline::new(PipelineConfig::for_arch(hier))
        .evaluate(&graph, m.clone(), "manual")
        .expect("pipeline runs");
    let r_flat = MappingPipeline::new(PipelineConfig::for_arch(flat))
        .evaluate(&graph, m, "manual")
        .expect("pipeline runs");
    // identical numbers and identical serialized bytes
    assert_eq!(r_hier.hop_weighted_packets, r_flat.hop_weighted_packets);
    assert_eq!(r_hier.noc.digest().unwrap(), r_flat.noc.digest().unwrap());
    assert_eq!(
        serde_json::to_string(&r_hier.noc).expect("stats serialize"),
        serde_json::to_string(&r_flat.noc).expect("stats serialize"),
    );
}
