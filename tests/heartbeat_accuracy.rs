//! The §V-B claim as an integration test: for the temporally coded
//! heartbeat application, interconnect congestion (ISI distortion) costs
//! temporal-code fidelity, and the PSO mapping — which reduces congestion —
//! preserves more of it than PACMAN at power-limited clock rates.

use neuromap::apps::heartbeat::HeartbeatEstimation;
use neuromap::apps::App;
use neuromap::core::baselines::PacmanPartitioner;
use neuromap::core::partition::{PartitionProblem, Partitioner};
use neuromap::core::pipeline::evaluate_mapping_detailed;
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::PipelineConfig;
use neuromap::hw::arch::{Architecture, InterconnectKind};
use neuromap::noc::stats::Delivery;

/// Fraction of beat-scale sent intervals delivered within ±3%.
fn temporal_fidelity(log: &[Delivery], cycles_per_ms: u64) -> f64 {
    use std::collections::HashMap;
    let mut streams: HashMap<(u32, u32), Vec<(u64, u64)>> = HashMap::new();
    for d in log {
        streams
            .entry((d.source_neuron, d.dst_crossbar))
            .or_default()
            .push((d.inject_cycle, d.deliver_cycle));
    }
    let (mut total, mut hits) = (0u64, 0u64);
    for times in streams.values_mut() {
        times.sort_unstable();
        for w in times.windows(2) {
            let sent = (w[1].0 - w[0].0) as f64 / cycles_per_ms as f64;
            if !(300.0..=2000.0).contains(&sent) {
                continue;
            }
            let recv = w[1].1.abs_diff(w[0].1) as f64 / cycles_per_ms as f64;
            total += 1;
            if (recv - sent).abs() / sent <= 0.03 {
                hits += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[test]
fn lsm_estimates_heart_rate_from_spikes() {
    let app = HeartbeatEstimation {
        duration_ms: 4000,
        ..HeartbeatEstimation::default()
    };
    let (_, record) = app.run(3).expect("simulates");
    let (ecg, _) = app.encoded_input(3);
    let acc = app.estimate_accuracy(&record, ecg.mean_rr());
    assert!(acc > 0.7, "baseline RR accuracy too low: {acc}");
}

#[test]
fn congestion_degrades_temporal_fidelity_and_pso_resists() {
    let app = HeartbeatEstimation {
        duration_ms: 3000,
        ..HeartbeatEstimation::default()
    };
    let graph = app.spike_graph(5).expect("simulates");
    let arch = Architecture::custom(4, 24, InterconnectKind::Tree { arity: 4 }).unwrap();
    let problem = PartitionProblem::new(&graph, 4, 24).unwrap();
    let m_pacman = PacmanPartitioner::new().partition(&problem).unwrap();
    let m_pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 20,
        iterations: 20,
        ..PsoConfig::default()
    })
    .partition(&problem)
    .unwrap();

    let fidelity = |mapping: &neuromap::hw::Mapping, cycles: u64| {
        let mut cfg = PipelineConfig::for_arch(arch.clone());
        cfg.noc.cycles_per_step = cycles;
        let (report, log) =
            evaluate_mapping_detailed(&graph, mapping.clone(), "x", &cfg).expect("evaluates");
        (
            report.noc.avg_isi_distortion_cycles,
            temporal_fidelity(&log, cycles),
        )
    };

    // fast clock: both mappings deliver faithfully
    let (_, fid_pso_fast) = fidelity(&m_pso, 4096);
    assert!(
        fid_pso_fast > 0.95,
        "fast clock should be faithful: {fid_pso_fast}"
    );

    // power-limited clock: congestion differentiates the mappings
    let (isi_pacman, fid_pacman) = fidelity(&m_pacman, 96);
    let (isi_pso, fid_pso) = fidelity(&m_pso, 96);
    assert!(
        isi_pso < isi_pacman,
        "PSO must reduce ISI distortion: {isi_pso} !< {isi_pacman}"
    );
    assert!(
        fid_pso >= fid_pacman,
        "lower distortion must not reduce fidelity: {fid_pso} !>= {fid_pacman}"
    );
    // and the slow clock genuinely hurts the congested mapping
    let (_, fid_pacman_fast) = fidelity(&m_pacman, 4096);
    assert!(
        fid_pacman < fid_pacman_fast,
        "congestion should cost PACMAN fidelity: {fid_pacman} !< {fid_pacman_fast}"
    );
}
