//! Run-time remapping end to end (the paper's future work, implemented as
//! an extension): a mapping optimized for one stimulus is carried over to
//! a drifted stimulus, and bounded incremental migration recovers most of
//! the lost efficiency without a full re-partition.

use neuromap::apps::hello_world::HelloWorld;
use neuromap::apps::{synthetic::Synthetic, App};
use neuromap::core::partition::{PartitionProblem, Partitioner};
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::remap::{remap, RemapConfig};

#[test]
fn remap_recovers_after_stimulus_drift() {
    // design-time workload (seed 1) and a drifted field workload (seed 99:
    // different Poisson rates on the stimulus sources)
    let design = Synthetic {
        steps: 400,
        ..Synthetic::new(2, 30)
    }
    .spike_graph(1)
    .expect("simulates");
    let field = Synthetic {
        steps: 400,
        ..Synthetic::new(2, 30)
    }
    .spike_graph(99)
    .expect("simulates");

    let c = 4usize;
    let cap = (design.num_neurons() / 4) + 4;
    let p_design = PartitionProblem::new(&design, c, cap).unwrap();
    let p_field = PartitionProblem::new(&field, c, cap).unwrap();

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 24,
        iterations: 24,
        ..PsoConfig::default()
    });
    let deployed = pso.partition(&p_design).unwrap();

    let stale_cost = p_field.cut_spikes(deployed.assignment());
    let outcome = remap(
        &p_field,
        &deployed,
        &RemapConfig {
            max_migrations: 24,
            ..RemapConfig::default()
        },
    )
    .unwrap();

    assert_eq!(outcome.cost_before, stale_cost);
    assert!(outcome.cost_after <= outcome.cost_before);
    // the remap must stay cheap: bounded migrations, not a reshuffle
    assert!(outcome.migrations.len() <= 24);
    // and the refreshed mapping is feasible for the field workload
    assert!(p_field.is_feasible(outcome.mapping.assignment()));
}

#[test]
fn remap_recovers_controlled_rate_drift() {
    // Controlled drift with exact ground truth and *no optimizer in the
    // loop* (an optimizer-produced deployment makes the recoverable gap
    // depend on which local optimum the search happens to land in): 24
    // triples (aᵢ, bᵢ, xᵢ) with synapses aᵢ→xᵢ and bᵢ→xᵢ. At design time
    // the aᵢ are hot (40 spikes) and the bᵢ cold (2); in the field the
    // hot-spot has moved to the bᵢ. The deployed mapping co-locates every
    // hot source with its target ({aᵢ, xᵢ} packed per crossbar, bᵢ on the
    // next crossbar over) — optimal for the design statistics (cost 48 =
    // 24 cold cut synapses) and maximally wrong after the drift (cost 960
    // = 24 hot cut synapses). Bounded single-neuron migration can provably
    // repair it: each bᵢ migrates to xᵢ's crossbar (capacity 20 ≥ 18
    // leaves room), so remap must recover essentially the whole gap.
    use neuromap::core::SpikeGraph;
    use neuromap::hw::mapping::Mapping;

    let pairs = 24u32;
    let (b0, x0) = (pairs, 2 * pairs);
    let n = 3 * pairs;
    let mut synapses = Vec::new();
    for i in 0..pairs {
        synapses.push((i, x0 + i));
        synapses.push((b0 + i, x0 + i));
    }
    let counts = |a_hot: bool| -> Vec<u32> {
        (0..n)
            .map(|j| {
                if j < b0 {
                    if a_hot {
                        40
                    } else {
                        2
                    }
                } else if j < x0 {
                    if a_hot {
                        2
                    } else {
                        40
                    }
                } else {
                    0
                }
            })
            .collect()
    };
    let design = SpikeGraph::from_parts(n, synapses.clone(), counts(true)).unwrap();
    let field = SpikeGraph::from_parts(n, synapses, counts(false)).unwrap();
    let c = 4usize;
    let cap = 20u32;
    let p_design = PartitionProblem::new(&design, c, cap).unwrap();
    let p_field = PartitionProblem::new(&field, c, cap).unwrap();

    // deployed: {aᵢ, xᵢ} on crossbar ⌊i/6⌋, bᵢ shifted one crossbar over
    let deployed_a: Vec<u32> = (0..n)
        .map(|j| {
            if j < b0 {
                j / 6
            } else if j < x0 {
                ((j - b0) / 6 + 1) % 4
            } else {
                (j - x0) / 6
            }
        })
        .collect();
    assert_eq!(p_design.cut_spikes(&deployed_a), 48, "design-optimal");
    assert_eq!(p_field.cut_spikes(&deployed_a), 960, "maximally stale");
    let deployed = Mapping::from_assignment(deployed_a, c).unwrap();

    let outcome = remap(
        &p_field,
        &deployed,
        &RemapConfig {
            max_migrations: 64,
            ..RemapConfig::default()
        },
    )
    .unwrap();

    // bounded repair must never regress, must recover ≥ 95 % of the gap,
    // and must stay within a migration budget proportional to the drift
    assert_eq!(outcome.cost_before, 960);
    assert!(outcome.cost_after <= outcome.cost_before);
    assert!(
        outcome.cost_after <= 48,
        "remap left {} of a 960-spike stale cost",
        outcome.cost_after
    );
    assert!(outcome.migrations.len() <= 32, "one move per drifted pair");
    assert!(p_field.is_feasible(outcome.mapping.assignment()));
}

#[test]
fn remap_never_regresses_even_when_structure_is_locked() {
    // The pooling structure of hello-world resists local repair: a fresh
    // global optimization can regroup whole stripes, bounded migration
    // cannot. The contract is monotonicity, not optimality.
    let app = HelloWorld {
        steps: 400,
        ..HelloWorld::default()
    };
    let design = app.spike_graph(1).expect("simulates");
    let field = app.spike_graph(77).expect("simulates");

    let c = 4usize;
    let cap = design.num_neurons() / 4 + 8;
    let p_design = PartitionProblem::new(&design, c, cap).unwrap();
    let p_field = PartitionProblem::new(&field, c, cap).unwrap();

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 24,
        iterations: 24,
        ..PsoConfig::default()
    });
    let deployed = pso.partition(&p_design).unwrap();
    let outcome = remap(
        &p_field,
        &deployed,
        &RemapConfig {
            max_migrations: 64,
            ..RemapConfig::default()
        },
    )
    .unwrap();
    assert!(outcome.cost_after <= outcome.cost_before);
    assert!(p_field.is_feasible(outcome.mapping.assignment()));
}
