//! Run-time remapping end to end (the paper's future work, implemented as
//! an extension): a mapping optimized for one stimulus is carried over to
//! a drifted stimulus, and bounded incremental migration recovers most of
//! the lost efficiency without a full re-partition.

use neuromap::apps::hello_world::HelloWorld;
use neuromap::apps::{synthetic::Synthetic, App};
use neuromap::core::partition::{PartitionProblem, Partitioner};
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::remap::{remap, RemapConfig};

#[test]
fn remap_recovers_after_stimulus_drift() {
    // design-time workload (seed 1) and a drifted field workload (seed 99:
    // different Poisson rates on the stimulus sources)
    let design = Synthetic {
        steps: 400,
        ..Synthetic::new(2, 30)
    }
    .spike_graph(1)
    .expect("simulates");
    let field = Synthetic {
        steps: 400,
        ..Synthetic::new(2, 30)
    }
    .spike_graph(99)
    .expect("simulates");

    let c = 4usize;
    let cap = (design.num_neurons() / 4) + 4;
    let p_design = PartitionProblem::new(&design, c, cap).unwrap();
    let p_field = PartitionProblem::new(&field, c, cap).unwrap();

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 24,
        iterations: 24,
        ..PsoConfig::default()
    });
    let deployed = pso.partition(&p_design).unwrap();

    let stale_cost = p_field.cut_spikes(deployed.assignment());
    let outcome = remap(
        &p_field,
        &deployed,
        &RemapConfig {
            max_migrations: 24,
            ..RemapConfig::default()
        },
    )
    .unwrap();

    assert_eq!(outcome.cost_before, stale_cost);
    assert!(outcome.cost_after <= outcome.cost_before);
    // the remap must stay cheap: bounded migrations, not a reshuffle
    assert!(outcome.migrations.len() <= 24);
    // and the refreshed mapping is feasible for the field workload
    assert!(p_field.is_feasible(outcome.mapping.assignment()));
}

#[test]
fn remap_recovers_controlled_rate_drift() {
    // Controlled drift with known ground truth: the same topology, but the
    // traffic hot-spot moves from the first half of a layer to the second.
    // (Sampling-noise "drift" on identical stimuli mostly measures
    // overfitting of the design-time optimum, not adaptability.)
    use neuromap::core::SpikeGraph;

    let width = 24u32;
    let mut synapses = Vec::new();
    for a in 0..width {
        for b in width..2 * width {
            if (a + b) % 3 == 0 {
                synapses.push((a, b));
            }
        }
    }
    let hot = |first_half_hot: bool| -> SpikeGraph {
        let counts: Vec<u32> = (0..2 * width)
            .map(|i| {
                let in_first = i < width / 2 || (width..width + width / 2).contains(&i);
                if in_first == first_half_hot {
                    40
                } else {
                    2
                }
            })
            .collect();
        SpikeGraph::from_parts(2 * width, synapses.clone(), counts).unwrap()
    };
    let design = hot(true);
    let field = hot(false);

    let c = 4usize;
    let cap = design.num_neurons() / 4 + 4;
    let p_design = PartitionProblem::new(&design, c, cap).unwrap();
    let p_field = PartitionProblem::new(&field, c, cap).unwrap();

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 24,
        iterations: 24,
        ..PsoConfig::default()
    });
    let deployed = pso.partition(&p_design).unwrap();
    let fresh = pso.partition(&p_field).unwrap();
    let fresh_cost = p_field.cut_spikes(fresh.assignment());

    let outcome = remap(
        &p_field,
        &deployed,
        &RemapConfig {
            max_migrations: 64,
            ..RemapConfig::default()
        },
    )
    .unwrap();

    // bounded repair must never regress and must recover a meaningful
    // share of the drift-induced degradation
    assert!(outcome.cost_after <= outcome.cost_before);
    let stale_gap = outcome.cost_before.saturating_sub(fresh_cost) as f64;
    let recovered = (outcome.cost_before - outcome.cost_after) as f64;
    if stale_gap > 0.0 {
        assert!(
            recovered >= 0.3 * stale_gap,
            "remap recovered only {recovered} of a {stale_gap} gap \
             (stale {}, remapped {}, fresh {fresh_cost})",
            outcome.cost_before,
            outcome.cost_after
        );
    }
}

#[test]
fn remap_never_regresses_even_when_structure_is_locked() {
    // The pooling structure of hello-world resists local repair: a fresh
    // global optimization can regroup whole stripes, bounded migration
    // cannot. The contract is monotonicity, not optimality.
    let app = HelloWorld {
        steps: 400,
        ..HelloWorld::default()
    };
    let design = app.spike_graph(1).expect("simulates");
    let field = app.spike_graph(77).expect("simulates");

    let c = 4usize;
    let cap = design.num_neurons() / 4 + 8;
    let p_design = PartitionProblem::new(&design, c, cap).unwrap();
    let p_field = PartitionProblem::new(&field, c, cap).unwrap();

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 24,
        iterations: 24,
        ..PsoConfig::default()
    });
    let deployed = pso.partition(&p_design).unwrap();
    let outcome = remap(
        &p_field,
        &deployed,
        &RemapConfig {
            max_migrations: 64,
            ..RemapConfig::default()
        },
    )
    .unwrap();
    assert!(outcome.cost_after <= outcome.cost_before);
    assert!(p_field.is_feasible(outcome.mapping.assignment()));
}
