//! Architecture exploration with the staged mapping pipeline: the same
//! application partitioned once per fabric, then mapped through both
//! placement strategies — identity (cluster `k` wired to router `k`, the
//! paper's implicit choice) and hop-optimized (the SpiNeMap-style second
//! stage) — onto mesh, tree, torus and star interconnects.
//!
//! Each fabric builds one `MappingPipeline`, so its router graph and
//! all-pairs hop-distance table are derived once and shared by the
//! partition problem, the placement optimizer, and the report's hop
//! metrics.
//!
//! Run: `cargo run --release --example architecture_exploration`

use neuromap::apps::{synthetic::Synthetic, App};
use neuromap::core::pipeline::{MappingPipeline, PipelineConfig, PlacementStrategy};
use neuromap::core::place::PlaceConfig;
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::hw::arch::{Architecture, InterconnectKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Synthetic {
        steps: 400,
        ..Synthetic::new(3, 60)
    };
    let graph = app.spike_graph(3)?;
    println!(
        "application {}: {} neurons, {} synapses\n",
        app.name(),
        graph.num_neurons(),
        graph.num_synapses()
    );

    let fabrics = [
        ("mesh", InterconnectKind::Mesh),
        ("tree (arity 4)", InterconnectKind::Tree { arity: 4 }),
        ("tree (arity 2)", InterconnectKind::Tree { arity: 2 }),
        ("torus", InterconnectKind::Torus),
        ("star", InterconnectKind::Star),
    ];

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 24,
        iterations: 24,
        threads: 4,
        ..PsoConfig::default()
    });

    println!(
        "{:<16} {:<13} {:>12} {:>9} {:>10} {:>10} {:>12}",
        "interconnect", "placement", "global pJ", "avg hops", "hop·pkts", "avg lat", "ISI dist"
    );
    for (name, kind) in fabrics {
        let arch = Architecture::custom(9, 24, kind)?;
        // one pipeline per fabric: topology + DistanceLut built once,
        // reused by every stage below
        let pipeline = MappingPipeline::new(PipelineConfig::for_arch(arch));

        // stage 1 once; both placement strategies start from the same
        // partition so the comparison isolates the placement stage
        let mapping = pipeline.partition(&graph, &pso)?;

        let optimized =
            pipeline.with_placement(PlacementStrategy::HopOptimized(PlaceConfig::default()));
        for pipe in [&pipeline, &optimized] {
            let (placed, _, label) = pipe.place(&graph, &mapping)?;
            let report = pipe.evaluate_as(&graph, placed, "pso", &label)?;
            println!(
                "{:<16} {:<13} {:>12.1} {:>9.2} {:>10} {:>10.1} {:>12.1}",
                name,
                report.placement,
                report.global_energy_pj,
                report.avg_hops,
                report.hop_weighted_packets,
                report.noc.avg_latency_cycles,
                report.noc.avg_isi_distortion_cycles,
            );
        }
    }
    println!("\nhop count and contention differ per fabric; the placement stage shortens routes");
    println!("without touching the partition (cut packets are placement-invariant)");
    Ok(())
}
