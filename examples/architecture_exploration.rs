//! Architecture exploration across interconnect topologies: the same
//! application mapped with the same PSO onto mesh, tree, torus and star
//! fabrics — which interconnect serves spiking traffic best?
//!
//! Run: `cargo run --release --example architecture_exploration`

use neuromap::apps::{synthetic::Synthetic, App};
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::{run_pipeline, PipelineConfig};
use neuromap::hw::arch::{Architecture, InterconnectKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Synthetic {
        steps: 400,
        ..Synthetic::new(3, 60)
    };
    let graph = app.spike_graph(3)?;
    println!(
        "application {}: {} neurons, {} synapses\n",
        app.name(),
        graph.num_neurons(),
        graph.num_synapses()
    );

    let fabrics = [
        ("mesh", InterconnectKind::Mesh),
        ("tree (arity 4)", InterconnectKind::Tree { arity: 4 }),
        ("tree (arity 2)", InterconnectKind::Tree { arity: 2 }),
        ("torus", InterconnectKind::Torus),
        ("star", InterconnectKind::Star),
    ];

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 24,
        iterations: 24,
        threads: 4,
        ..PsoConfig::default()
    });

    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>14}",
        "interconnect", "global pJ", "avg lat", "max lat", "ISI dist (cyc)"
    );
    for (name, kind) in fabrics {
        let arch = Architecture::custom(9, 24, kind)?;
        let cfg = PipelineConfig::for_arch(arch);
        let report = run_pipeline(&graph, &pso, &cfg)?;
        println!(
            "{:<16} {:>14.1} {:>12.1} {:>12} {:>14.1}",
            name,
            report.global_energy_pj,
            report.noc.avg_latency_cycles,
            report.noc.max_latency_cycles,
            report.noc.avg_isi_distortion_cycles,
        );
    }
    println!("\nhop count and contention differ per fabric; the mapping flow quantifies the trade");
    Ok(())
}
