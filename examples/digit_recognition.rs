//! The handwritten-digit workload end to end: train a Diehl & Cook-style
//! network with STDP on procedural digit glyphs, extract its spike graph,
//! and explore the crossbar-size design space (the paper's Fig. 6
//! question: few large crossbars or many small ones?).
//!
//! Run: `cargo run --release --example digit_recognition`

use neuromap::apps::digit_recognition::{glyph, DigitRecognition};
use neuromap::apps::App;
use neuromap::core::explore::architecture_sweep;
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::PipelineConfig;
use neuromap::hw::arch::{Architecture, InterconnectKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // render one glyph as ASCII so the input is visible
    println!("input glyph for digit 3 (28×28, 7-segment raster):");
    let img = glyph(3);
    for y in (0..28).step_by(2) {
        let row: String = (0..28)
            .map(|x| if img[y * 28 + x] > 0.5 { '#' } else { '.' })
            .collect();
        println!("  {row}");
    }

    // a short unsupervised training run (STDP + adaptive thresholds)
    let app = DigitRecognition {
        presentations: 4,
        present_ms: 100,
        rest_ms: 25,
        ..DigitRecognition::default()
    };
    println!(
        "\nsimulating {} ({} ms with STDP)…",
        app.name(),
        app.sim_steps()
    );
    let graph = app.spike_graph(42)?;
    println!(
        "spike graph: {} neurons, {} synapses, {} spikes",
        graph.num_neurons(),
        graph.num_synapses(),
        graph.total_spikes()
    );

    // the Fig. 6 sweep: how big should the crossbars be?
    let mut base = PipelineConfig::for_arch(Architecture::custom(
        12,
        128,
        InterconnectKind::Tree { arity: 4 },
    )?);
    // dense per-synapse traffic needs a faster interconnect clock to drain
    base.noc.cycles_per_step = 8192;
    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 20,
        iterations: 20,
        threads: 4,
        ..PsoConfig::default()
    });
    let sizes = [180u32, 360, 720, 1440];
    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "size", "crossbars", "local µJ", "global µJ", "total µJ", "latency"
    );
    for pt in architecture_sweep(&graph, &base, &sizes, &pso)? {
        println!(
            "{:>8} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>10}",
            pt.neurons_per_crossbar,
            pt.num_crossbars,
            pt.local_energy_uj,
            pt.global_energy_uj,
            pt.total_energy_uj,
            pt.worst_latency_cycles,
        );
    }
    println!("\nthe total-energy optimum sits between the extremes (paper Fig. 6)");
    Ok(())
}
