//! Retargeting the flow to different silicon: load an energy model from a
//! JSON file (the counterpart of Noxim's external YAML power file) and see
//! how the local/global energy split — and therefore the best crossbar
//! size — moves with the technology's event costs.
//!
//! Run: `cargo run --release --example custom_energy_model`

use neuromap::apps::{synthetic::Synthetic, App};
use neuromap::core::explore::architecture_sweep;
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::PipelineConfig;
use neuromap::hw::arch::{Architecture, InterconnectKind};
use neuromap::hw::energy::EnergyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Synthetic {
        steps: 400,
        ..Synthetic::new(2, 48)
    };
    let graph = app.spike_graph(5)?;

    // two technologies, expressed as loadable JSON (edit freely):
    // an analog-crossbar chip with cheap local events …
    let analog = EnergyModel::from_json(
        r#"{
            "local_synapse_pj": 0.8,
            "router_hop_pj": 14.0,
            "link_flit_pj": 4.0,
            "buffer_flit_pj": 2.0,
            "encode_pj": 5.0,
            "decode_pj": 5.0,
            "reference_dim": 128.0
        }"#,
    )?;
    // … and a digital chip where local events cost nearly as much as hops
    let digital = EnergyModel::from_json(
        r#"{
            "local_synapse_pj": 8.0,
            "router_hop_pj": 12.0,
            "link_flit_pj": 3.0,
            "buffer_flit_pj": 1.5,
            "encode_pj": 3.0,
            "decode_pj": 3.0,
            "reference_dim": 128.0
        }"#,
    )?;

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 20,
        iterations: 20,
        ..PsoConfig::default()
    });
    let sizes = [18u32, 36, 54, 106];

    for (name, energy) in [("analog crossbars", analog), ("digital cores", digital)] {
        println!("\n## {name}\n");
        let arch = Architecture::custom(8, 16, InterconnectKind::Mesh)?.with_energy(energy);
        let base = PipelineConfig::for_arch(arch);
        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>12}",
            "size", "crossbars", "local µJ", "global µJ", "total µJ"
        );
        let mut best = (0u32, f64::INFINITY);
        for pt in architecture_sweep(&graph, &base, &sizes, &pso)? {
            println!(
                "{:>8} {:>10} {:>12.3} {:>12.3} {:>12.3}",
                pt.neurons_per_crossbar,
                pt.num_crossbars,
                pt.local_energy_uj,
                pt.global_energy_uj,
                pt.total_energy_uj,
            );
            if pt.total_energy_uj < best.1 {
                best = (pt.neurons_per_crossbar, pt.total_energy_uj);
            }
        }
        println!("→ best crossbar size for {name}: {} neurons", best.0);
    }
    println!("\nthe optimal architecture is technology-dependent — which is why the flow takes the energy model as an input");
    Ok(())
}
