//! The temporally coded heartbeat workload: synthetic ECG → level-crossing
//! spike encoding → liquid state machine → R-R estimation, then the §V-B
//! study — how interconnect congestion (ISI distortion) corrupts the
//! temporal code when the chip runs at a low-power clock.
//!
//! Run: `cargo run --release --example heartbeat_estimation`

use neuromap::apps::heartbeat::HeartbeatEstimation;
use neuromap::apps::App;
use neuromap::core::baselines::PacmanPartitioner;
use neuromap::core::partition::{PartitionProblem, Partitioner};
use neuromap::core::pipeline::evaluate_mapping_detailed;
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::PipelineConfig;
use neuromap::hw::arch::{Architecture, InterconnectKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = HeartbeatEstimation {
        duration_ms: 4000,
        ..HeartbeatEstimation::default()
    };

    // the application itself: estimate the heart rate from spikes
    let (ecg, trains) = app.encoded_input(11);
    println!(
        "synthetic ECG: {} beats over {} ms (truth mean RR = {:.0} ms)",
        ecg.r_peaks.len(),
        app.duration_ms,
        ecg.mean_rr()
    );
    println!(
        "level-crossing encoder: {} up-spikes, {} down-spikes",
        trains[0].len(),
        trains[1].len()
    );

    let (_, record) = app.run(11)?;
    let est = app.estimate_rr(&record);
    println!(
        "LSM readout estimate: {:?} ms → accuracy {:.1}%",
        est,
        app.estimate_accuracy(&record, ecg.mean_rr()) * 100.0
    );

    // now map it on hardware and push the interconnect into the
    // power-limited regime
    let graph = app.spike_graph(11)?;
    let arch = Architecture::custom(4, 24, InterconnectKind::Tree { arity: 4 })?;
    let problem = PartitionProblem::new(&graph, 4, 24)?;

    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 30,
        iterations: 30,
        ..PsoConfig::default()
    });
    let m_pso = pso.partition(&problem)?;
    let m_pacman = PacmanPartitioner::new().partition(&problem)?;

    println!("\ninterconnect clock sweep (slower clock = lower power = more congestion):");
    println!(
        "{:>10} {:>22} {:>22}",
        "cycles/ms", "PACMAN ISI dist (cyc)", "PSO ISI dist (cyc)"
    );
    for cycles in [64u64, 256, 1024] {
        let mut cfg = PipelineConfig::for_arch(arch.clone());
        cfg.noc.cycles_per_step = cycles;
        let (r_pacman, _) = evaluate_mapping_detailed(&graph, m_pacman.clone(), "pacman", &cfg)?;
        let (r_pso, _) = evaluate_mapping_detailed(&graph, m_pso.clone(), "pso", &cfg)?;
        println!(
            "{:>10} {:>22.1} {:>22.1}",
            cycles, r_pacman.noc.avg_isi_distortion_cycles, r_pso.noc.avg_isi_distortion_cycles
        );
    }
    println!("\ntemporally coded applications feel every one of those cycles (paper §V-B)");
    Ok(())
}
