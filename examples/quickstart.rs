//! Quickstart: build a small SNN, simulate it, partition it with the
//! paper's PSO, and compare the interconnect traffic against the PACMAN
//! and NEUTRAMS baselines.
//!
//! Run: `cargo run --release --example quickstart`

use neuromap::apps::{synthetic::Synthetic, App};
use neuromap::core::baselines::{NeutramsPartitioner, PacmanPartitioner};
use neuromap::core::partition::Partitioner;
use neuromap::core::pso::{PsoConfig, PsoPartitioner};
use neuromap::core::{run_pipeline, PipelineConfig};
use neuromap::hw::arch::{Architecture, InterconnectKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An application: a 2-layer synthetic SNN driven by 10 Poisson
    //    sources (the paper's synth_2x40 would be the m×n notation).
    let app = Synthetic {
        steps: 500,
        ..Synthetic::new(2, 40)
    };
    println!("application: {}", app.name());

    // 2. Simulate it and extract the spike graph (the CARLsim → dataflow
    //    graph step of the paper's Figure 4).
    let (net, record) = app.run(7)?;
    let rates = neuromap::snn::raster::population_rate(&record, 10..90, 25);
    println!(
        "population rate: {}",
        neuromap::snn::raster::sparkline(&rates)
    );
    let graph = neuromap::core::SpikeGraph::from_record(&net, &record);
    println!(
        "spike graph: {} neurons, {} synapses, {} spikes over {} ms",
        graph.num_neurons(),
        graph.num_synapses(),
        graph.total_spikes(),
        graph.duration_steps()
    );

    // 3. A target chip: 4 crossbars of 24 neurons joined by a NoC-tree
    //    (a quarter-scale CxQuad).
    let arch = Architecture::custom(4, 24, InterconnectKind::Tree { arity: 4 })?;
    let config = PipelineConfig::for_arch(arch);

    // 4. Partition with PSO and with the two baselines; simulate the
    //    resulting global-synapse traffic on the interconnect.
    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 30,
        iterations: 30,
        ..PsoConfig::default()
    });
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(NeutramsPartitioner::new()),
        Box::new(PacmanPartitioner::new()),
        Box::new(pso),
    ];

    println!(
        "\n{:<10} {:>12} {:>14} {:>14} {:>12}",
        "mapping", "cut spikes", "global pJ", "local pJ", "max lat"
    );
    for p in &partitioners {
        let report = run_pipeline(&graph, p.as_ref(), &config)?;
        println!(
            "{:<10} {:>12} {:>14.1} {:>14.1} {:>12}",
            report.partitioner,
            report.cut_spikes,
            report.global_energy_pj,
            report.local_energy_pj,
            report.noc.max_latency_cycles,
        );
    }
    println!(
        "\nlower cut spikes ⇒ lower interconnect energy and latency — the paper's core result"
    );
    Ok(())
}
